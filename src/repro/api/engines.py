"""The six registered backends wrapping every engine in the repository.

Each adapter translates an :class:`~repro.api.spec.ExperimentSpec` into the
wrapped engine's native arguments and returns a flat metrics mapping whose
headline key is always ``"mean_delay"`` (mean sojourn time, the paper's
"average delay").  The stochastic adapters (``ctmc``, ``cluster``,
``fleet``) reproduce the exact call signatures of the pre-spec ensemble
workers, so seeded results remain bitwise identical across the refactor.

=============  ======================================================  ========
backend        wrapped engine                                          answer
=============  ======================================================  ========
``qbd_bounds``  :func:`repro.core.analysis.analyze_sqd`                bounds
``exact``       :func:`repro.core.exact.solve_exact_truncated`         exact
``ctmc``        :func:`repro.simulation.gillespie.simulate_sqd_ctmc`   estimate
``cluster``     :class:`repro.simulation.cluster.ClusterSimulation`    estimate
``fleet``       :func:`repro.fleet.engine.simulate_fleet`              estimate
``meanfield``   :func:`repro.fleet.meanfield.meanfield_delay`          limit
=============  ======================================================  ========
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.api.backends import Capabilities, register_backend
from repro.api.spec import DistributionSpec, ExperimentSpec, SpecError

__all__ = [
    "QBDBoundsBackend",
    "ExactBackend",
    "CTMCBackend",
    "ClusterBackend",
    "FleetBackend",
    "MeanFieldBackend",
    "build_arrival_process",
]

#: Largest QBD repeating-block size ``C(N+T-1, T)`` the bounds backend
#: accepts; beyond this the matrix-geometric solve takes minutes.
MAX_QBD_BLOCK = 3_000


#: Every option name some backend understands.  A spec may carry options for
#: backends other than the one running it — that is the point of "one spec,
#: many engines" (e.g. ``threshold`` rides along to the simulators, which
#: ignore it) — but a name no backend knows is a typo and fails everywhere.
KNOWN_OPTIONS = {
    "threshold": "qbd_bounds",
    "buffer_size": "exact",
    "start": "fleet",
    "with_replacement": "fleet",
    "warmup_jobs": "cluster",
    "kernel": "fleet",
}


def _pop_options(spec: ExperimentSpec, *relevant: str) -> Dict[str, Any]:
    """The options this backend acts on; typo'd option names fail loudly."""
    unknown = set(spec.options) - set(KNOWN_OPTIONS)
    if unknown:
        raise SpecError(
            f"unknown spec options: {sorted(unknown)} "
            f"(known options: {sorted(KNOWN_OPTIONS)})"
        )
    return {name: spec.options[name] for name in relevant if name in spec.options}


def _queue_policy(spec: ExperimentSpec):
    """Queue-length dispatching policy object for the CTMC simulator."""
    from repro.policies import JoinShortestQueue, PowerOfD, UniformRandom

    if spec.policy == "sqd":
        return None  # simulator default: PowerOfD(d)
    if spec.policy == "jsq":
        return JoinShortestQueue()
    return UniformRandom()


def _service_distribution(dist: DistributionSpec, service_rate: float):
    """Instantiate a service distribution with mean ``1 / service_rate``."""
    from repro.markov.service_distributions import (
        DeterministicService,
        ErlangService,
        ExponentialService,
        HyperexponentialService,
    )

    mean = 1.0 / service_rate
    if dist.name == "exponential":
        return ExponentialService(rate=service_rate)
    if dist.name == "erlang":
        stages = dist.params.get("stages", 2)
        return ErlangService(stages=stages, mean=mean)
    if dist.name == "deterministic":
        return DeterministicService(value=mean)
    return _hyperexponential(dist, mean, f"mean service time 1/mu = {mean:.6g}")


def _hyperexponential(dist: DistributionSpec, mean: float, what: str):
    """Hyperexponential mixture with the required mean.

    Either a two-moment fit (``{"scv": x}``, balanced two-phase with squared
    coefficient of variation ``x >= 1``) or an explicit mixture
    (``{"probabilities": [...], "rates": [...]}``) whose mean must match —
    otherwise the spec's ``utilization`` would silently stop meaning
    ``rho = lambda / mu``.
    """
    from repro.markov.service_distributions import HyperexponentialService

    if "scv" in dist.params:
        return HyperexponentialService.balanced_two_phase(mean=mean, scv=dist.params["scv"])
    probabilities = dist.params.get("probabilities")
    rates = dist.params.get("rates")
    if probabilities is None or rates is None:
        raise SpecError(
            "hyperexponential distributions need either an 'scv' param or explicit "
            "'probabilities' and 'rates'"
        )
    built = HyperexponentialService(list(probabilities), list(rates))
    if not math.isclose(built.mean, mean, rel_tol=1e-9):
        raise SpecError(
            f"hyperexponential mixture mean {built.mean:.6g} does not match the spec's {what}"
        )
    return built


def _arrival_process(dist: DistributionSpec, total_rate: float):
    """Instantiate an arrival process with aggregate rate ``total_rate``.

    The spec convention is "shapes in the workload, rates from the system":
    renewal laws are built at mean ``1 / total_rate``, an ``mmpp2`` shape is
    time-rescaled so its aggregate rate is ``total_rate`` (burstiness
    statistics are scale-invariant), and a ``trace`` is loaded from disk and
    replayed — rescaled to ``total_rate`` unless ``{"rescale": false}``.
    """
    from repro.markov.arrival_processes import (
        MarkovianArrivalProcess,
        PoissonArrivals,
        RenewalArrivals,
    )
    from repro.markov.service_distributions import ErlangService

    if dist.name == "poisson":
        return PoissonArrivals(total_rate)
    if dist.name == "erlang":
        stages = dist.params.get("stages", 2)
        return RenewalArrivals(ErlangService(stages=stages, mean=1.0 / total_rate))
    if dist.name == "mmpp2":
        shape = MarkovianArrivalProcess.mmpp2(
            rate_high=dist.params["rate_high"],
            rate_low=dist.params["rate_low"],
            switch_to_low=dist.params["switch_to_low"],
            switch_to_high=dist.params["switch_to_high"],
        )
        return shape.rescaled(total_rate)
    if dist.name == "trace":
        from repro.traces.replay import TraceArrivals
        from repro.traces.trace import ArrivalTrace, TraceError

        try:
            # Cached: replicated runs re-resolve the same immutable file once
            # per replication, and the parse dominates short replications.
            trace = ArrivalTrace.load_cached(dist.params["path"])
            rescale = dist.params.get("rescale", True)
            return TraceArrivals(trace, rate=total_rate if rescale else None)
        except TraceError as error:
            raise SpecError(f"workload.arrival['trace']: {error}") from None
    return RenewalArrivals(
        _hyperexponential(
            dist, 1.0 / total_rate, f"mean interarrival time 1/(rho mu N) = {1.0 / total_rate:.6g}"
        )
    )


#: Public name of the spec-to-process translation, shared by the CLI's
#: ``analyze --arrival`` (MAP asymptotics from the spec layer) and the
#: trace tooling.
build_arrival_process = _arrival_process


@dataclass(frozen=True)
class _BoundsCapabilities(Capabilities):
    """Adds the QBD block-size tractability gate to the generic checks."""

    def why_unsupported(self, spec: ExperimentSpec) -> Optional[str]:
        reason = super().why_unsupported(spec)
        if reason is not None:
            return reason
        threshold = spec.option("threshold", 3)
        block = math.comb(spec.system.num_servers + threshold - 1, threshold)
        if block > MAX_QBD_BLOCK:
            return (
                f"QBD block size C(N+T-1, T) = {block} exceeds {MAX_QBD_BLOCK} "
                f"(N={spec.system.num_servers}, T={threshold}); lower the "
                "'threshold' option or the pool size"
            )
        return None


@register_backend("qbd_bounds")
class QBDBoundsBackend:
    """The paper's finite-regime bracket: Theorems 1/3 lower and upper bounds.

    The reported ``mean_delay`` is the Theorem 3 lower bound (the estimate
    the paper calls "remarkably accurate"); the extras carry the full
    bracket plus the asymptotic baseline.  Options: ``threshold`` (the
    imbalance threshold ``T``, default 3).
    """

    capabilities = _BoundsCapabilities(
        description="QBD lower/upper delay bounds (Theorems 1 and 3)",
        policies=("sqd",),
        answer="bounds",
        deterministic=True,
        auto_rank=None,
    )

    def run_once(self, spec: ExperimentSpec, seed: Optional[int]) -> Dict[str, Any]:
        from repro.core.analysis import analyze_sqd

        options = _pop_options(spec, "threshold")
        analysis = analyze_sqd(
            num_servers=spec.system.num_servers,
            d=spec.system.d,
            utilization=spec.system.utilization,
            threshold=options.get("threshold", 3),
            service_rate=spec.system.service_rate,
        )
        upper = analysis.upper_delay
        return {
            "mean_delay": analysis.lower_delay,
            "lower_delay": analysis.lower_delay,
            "upper_delay": math.inf if upper is None else upper,
            "upper_bound_unstable": analysis.upper_bound_unstable,
            "asymptotic_delay": analysis.asymptotic_delay,
            "threshold": options.get("threshold", 3),
        }


@register_backend("exact")
class ExactBackend:
    """Numerically exact solution of the buffer-truncated SQ(d) chain.

    Tractable only for tiny pools (the ordered state space has
    ``C(N + B, N)`` states).  Options: ``buffer_size`` (per-server
    head-room ``B``, default 30).
    """

    capabilities = Capabilities(
        description="exact stationary solution of the truncated chain",
        policies=("sqd",),
        max_servers=3,
        answer="exact",
        deterministic=True,
        auto_rank=0,
    )

    def run_once(self, spec: ExperimentSpec, seed: Optional[int]) -> Dict[str, Any]:
        from repro.core.exact import solve_exact_truncated
        from repro.core.model import SQDModel

        options = _pop_options(spec, "buffer_size")
        model = SQDModel(
            num_servers=spec.system.num_servers,
            d=spec.system.d,
            utilization=spec.system.utilization,
            service_rate=spec.system.service_rate,
        )
        solution = solve_exact_truncated(model, buffer_size=options.get("buffer_size", 30))
        return {
            "mean_delay": solution.mean_delay,
            "truncation_mass": solution.truncation_mass,
            "num_states": float(solution.num_states),
        }


@register_backend("ctmc")
class CTMCBackend:
    """Per-server queue-length CTMC simulation (Gillespie)."""

    capabilities = Capabilities(
        description="per-server CTMC simulation (Gillespie)",
        policies=("sqd", "jsq", "random"),
        max_servers=20_000,
        answer="estimate",
        auto_rank=2,
    )

    DEFAULT_EVENTS = 200_000

    def run_once(self, spec: ExperimentSpec, seed: Optional[int]) -> Dict[str, Any]:
        from repro.simulation.gillespie import simulate_sqd_ctmc

        _pop_options(spec)
        result = simulate_sqd_ctmc(
            num_servers=spec.system.num_servers,
            d=spec.system.d,
            utilization=spec.system.utilization,
            service_rate=spec.system.service_rate,
            num_events=spec.horizon.num_events or self.DEFAULT_EVENTS,
            warmup_fraction=spec.horizon.warmup_fraction,
            seed=seed,
            policy=_queue_policy(spec),
        )
        return {
            "mean_delay": result.mean_sojourn_time,
            "mean_waiting_time": result.mean_waiting_time,
            "mean_jobs_in_system": result.mean_jobs_in_system,
            "mean_queue_imbalance": result.mean_queue_imbalance,
            "simulated_time": result.simulated_time,
            "num_events": float(result.num_events),
        }


@register_backend("cluster")
class ClusterBackend:
    """Job-level discrete-event simulation — the distribution-agnostic engine.

    The only backend that runs non-exponential service, renewal arrivals,
    MAP (``mmpp2``) input, recorded-trace replay and the work-aware
    policies.  Options: ``warmup_jobs`` (jobs discarded before measurement;
    default one tenth of the job count).
    """

    capabilities = Capabilities(
        description="job-level discrete-event simulation",
        policies=("sqd", "jsq", "random", "round_robin", "jiq", "least_work_left"),
        arrivals=("poisson", "erlang", "hyperexponential", "mmpp2", "trace"),
        services=("exponential", "erlang", "hyperexponential", "deterministic"),
        max_servers=5_000,
        answer="estimate",
        auto_rank=3,
    )

    DEFAULT_JOBS = 50_000

    def _workload(self, spec: ExperimentSpec):
        from repro.simulation.workloads import Workload, poisson_exponential_workload

        system = spec.system
        if spec.workload.is_default:
            return poisson_exponential_workload(
                num_servers=system.num_servers,
                utilization=system.utilization,
                service_rate=system.service_rate,
            )
        total_rate = system.utilization * system.service_rate * system.num_servers
        return Workload(
            num_servers=system.num_servers,
            arrival_process=_arrival_process(spec.workload.arrival, total_rate),
            service_distribution=_service_distribution(spec.workload.service, system.service_rate),
        )

    def _policy(self, spec: ExperimentSpec):
        from repro.policies import (
            JoinIdleQueue,
            JoinShortestQueue,
            LeastWorkLeft,
            PowerOfD,
            RoundRobin,
            UniformRandom,
        )

        d = spec.system.d
        return {
            "sqd": lambda: PowerOfD(d),
            "jsq": JoinShortestQueue,
            "random": UniformRandom,
            "round_robin": RoundRobin,
            "jiq": JoinIdleQueue,
            "least_work_left": lambda: LeastWorkLeft(d),
        }[spec.policy]()

    def run_once(self, spec: ExperimentSpec, seed: Optional[int]) -> Dict[str, Any]:
        from repro.simulation.cluster import ClusterSimulation

        options = _pop_options(spec, "warmup_jobs")
        num_jobs = spec.horizon.num_jobs or self.DEFAULT_JOBS
        warmup_jobs = options.get("warmup_jobs", num_jobs // 10)
        simulation = ClusterSimulation(
            self._workload(spec), self._policy(spec), seed=seed, warmup_jobs=warmup_jobs
        )
        result = simulation.run(num_jobs)
        return {
            "mean_delay": result.mean_sojourn_time,
            "mean_waiting_time": result.mean_waiting_time,
            "simulated_time": result.simulated_time,
            "completed_jobs": float(result.completed_jobs),
        }


@dataclass(frozen=True)
class _FleetCapabilities(Capabilities):
    """Adds event-kernel capability to the generic checks.

    A spec may pin the fleet hot loop to one kernel via the ``kernel``
    option; combinations the kernel cannot run (e.g. ``uniformized`` with
    distinct-server SQ(d), d >= 3) are capability mismatches like any
    other, so ``require_capable`` and auto-selection report them through
    the same ``SpecError`` surface.
    """

    def why_unsupported(self, spec: ExperimentSpec) -> Optional[str]:
        reason = super().why_unsupported(spec)
        if reason is not None:
            return reason
        kernel = spec.option("kernel", "auto")
        if not isinstance(kernel, str):
            return f"the 'kernel' option must be a string, got {kernel!r}"
        from repro.kernels import available_kernels, kernel_why_unsupported

        if kernel != "auto" and kernel not in available_kernels():
            return (
                f"unknown kernel {kernel!r} "
                f"(available: {', '.join(['auto'] + available_kernels())})"
            )
        why = kernel_why_unsupported(
            kernel, spec.policy, spec.system.d, bool(spec.option("with_replacement", False))
        )
        if why is not None:
            return f"kernel {kernel!r} cannot run this spec: {why}"
        return None


@register_backend("fleet")
class FleetBackend:
    """Occupancy-vector Gillespie engine — N up to 10^6, plus scenarios.

    Options: ``start`` (``"stationary"`` / ``"empty"``) and
    ``with_replacement`` (poll with replacement) for stationary runs;
    ``kernel`` (``"auto"`` / ``"python"`` / ``"uniformized"``) selects the
    event kernel driving the hot loop (:mod:`repro.kernels`).  The
    resolved kernel is reported in the metrics, so it lands in
    ``RunResult`` extras and every ensemble JSONL record.
    """

    capabilities = _FleetCapabilities(
        description="occupancy-based fleet simulation (large N, scenarios)",
        policies=("sqd", "jsq", "random"),
        supports_scenarios=True,
        answer="estimate",
        auto_rank=1,
    )

    DEFAULT_EVENTS = 500_000

    def run_once(self, spec: ExperimentSpec, seed: Optional[int]) -> Dict[str, Any]:
        from repro.fleet.engine import run_scenario, simulate_fleet
        from repro.fleet.scenarios import get_scenario

        if spec.scenario is not None:
            options = _pop_options(spec, "with_replacement", "kernel")
            scenario = get_scenario(spec.scenario.name, **dict(spec.scenario.params))
            result = run_scenario(
                scenario,
                num_servers=spec.system.num_servers,
                d=spec.system.d,
                service_rate=spec.system.service_rate,
                policy=spec.policy,
                seed=seed,
                with_replacement=options.get("with_replacement", False),
                kernel=options.get("kernel", "auto"),
            )
            return {
                "mean_delay": result.overall_mean_delay,
                "simulated_time": result.total_time,
                "num_events": float(result.total_events),
                "kernel": result.kernel,
            }

        options = _pop_options(spec, "start", "with_replacement", "kernel")
        result = simulate_fleet(
            num_servers=spec.system.num_servers,
            d=spec.system.d,
            utilization=spec.system.utilization,
            service_rate=spec.system.service_rate,
            num_events=spec.horizon.num_events or self.DEFAULT_EVENTS,
            warmup_fraction=spec.horizon.warmup_fraction,
            seed=seed,
            policy=spec.policy,
            start=options.get("start", "stationary"),
            with_replacement=options.get("with_replacement", False),
            kernel=options.get("kernel", "auto"),
        )
        return {
            "mean_delay": result.mean_sojourn_time,
            "mean_waiting_time": result.mean_waiting_time,
            "mean_queue_length": result.mean_queue_length,
            "mean_jobs_in_system": result.mean_jobs_in_system,
            "simulated_time": result.simulated_time,
            "num_events": float(result.num_events),
            "events_per_second": result.events_per_second,
            "kernel": result.kernel,
        }


@register_backend("meanfield")
class MeanFieldBackend:
    """The ``N -> infinity`` mean-field limit (power-of-d fixed point).

    Never chosen by ``backend="auto"`` — it answers a different question
    (the limit, not the finite system) — but invaluable as the scale
    anchor every finite-``N`` estimate converges towards.
    """

    capabilities = Capabilities(
        description="mean-field (N -> infinity) fixed-point delay",
        policies=("sqd", "jsq", "random"),
        answer="limit",
        deterministic=True,
        auto_rank=None,
    )

    def run_once(self, spec: ExperimentSpec, seed: Optional[int]) -> Dict[str, Any]:
        from repro.fleet.meanfield import meanfield_delay, meanfield_mean_queue_length

        _pop_options(spec)
        utilization = spec.system.utilization
        # Under JSQ queueing vanishes in the limit: delay = bare service time.
        if spec.policy == "jsq":
            delay_units, queue = 1.0, utilization
        else:
            d = 1 if spec.policy == "random" else spec.system.d
            delay_units = meanfield_delay(utilization, d)
            queue = meanfield_mean_queue_length(utilization, d)
        return {
            "mean_delay": delay_units / spec.system.service_rate,
            "mean_queue_length": queue,
        }
