"""Shared result-serialization helpers for the API and the CLI.

One JSON dialect for every exported result: numpy scalars and arrays become
plain numbers and lists, non-finite floats become the strings ``"inf"`` /
``"-inf"`` / ``"nan"`` (JSON has no spelling for them, and bare ``NaN``
tokens break strict parsers), mappings keep sorted keys.  Both
:meth:`repro.api.runner.RunResult.to_json` and the CLI ``--json`` exports
(``analyze``, ``fleet``, ``run``) route through :func:`jsonable` /
:func:`write_json`, so their files share one schema style.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Mapping, Union

__all__ = [
    "atomic_write_json",
    "atomic_write_text",
    "jsonable",
    "dumps",
    "jsonl_line",
    "write_json",
]


def jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-representable types."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, Mapping):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(item) for item in value]
    if hasattr(value, "tolist"):  # numpy arrays and scalars
        return jsonable(value.tolist())
    if hasattr(value, "item"):  # zero-dimensional numpy scalars
        return jsonable(value.item())
    if hasattr(value, "to_dict"):  # spec dataclasses and friends
        return jsonable(value.to_dict())
    return str(value)


def dumps(payload: Any, indent: int = 2) -> str:
    """Serialize a payload with the shared conversions and sorted keys."""
    return json.dumps(jsonable(payload), sort_keys=True, indent=indent)


def jsonl_line(payload: Any) -> str:
    """One compact JSON line (no trailing newline) in the shared dialect.

    Append-only stores — the campaign work-queue journal, ad-hoc JSONL
    exports — write records through this so every line follows the same
    conversions as the pretty-printed exports (numpy scalars to numbers,
    non-finite floats to strings, sorted keys).
    """
    return json.dumps(jsonable(payload), sort_keys=True, separators=(",", ":"))


def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write ``text`` to ``path`` atomically: temp file, flush, fsync, rename.

    The one shared write-fsync-rename helper every whole-file JSON write
    routes through (the campaign manifest, ``--json`` exports): a reader —
    or a crash at any instant — sees either the complete old file or the
    complete new file, never a half-written one, and the rename is durable
    before this returns.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    scratch = target.with_name(target.name + ".tmp")
    with scratch.open("w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    scratch.replace(target)
    return target


def atomic_write_json(path: Union[str, Path], payload: Any, indent: int = 2) -> Path:
    """Atomically write a payload in the shared JSON dialect; returns the path."""
    return atomic_write_text(path, dumps(payload, indent=indent) + "\n")


def write_json(path: Union[str, Path], payload: Any, indent: int = 2) -> Path:
    """Write a payload as JSON; returns the path for ``print(f"wrote {...}")``.

    Routes through :func:`atomic_write_json`, so an export interrupted
    mid-write never leaves a truncated file behind.
    """
    return atomic_write_json(path, payload, indent=indent)
