"""repro.api — one declarative spec, many engines.

The unified experiment API of the package:

* :class:`ExperimentSpec` — frozen, validated, JSON-round-trippable
  description of one experiment (system, workload, policy, scenario,
  horizon, seed, backend options);
* the backend registry (:func:`register_backend`, :func:`get_backend`,
  :func:`available_backends`, :func:`select_backend`) with six registered
  engines: ``qbd_bounds``, ``exact``, ``ctmc``, ``cluster``, ``fleet``,
  ``meanfield``;
* :func:`run` — route a spec to a capable backend (or ``"auto"``),
  optionally replicated with confidence intervals, returning a uniform
  :class:`RunResult`;
* :class:`SpecError` — the one exception type for every invalid spec or
  spec/backend combination.

>>> from repro import ExperimentSpec, run
>>> spec = ExperimentSpec.create(num_servers=50, d=2, utilization=0.85)
>>> result = run(spec, replications=4)         # doctest: +SKIP
>>> bracket = run(spec, backend="qbd_bounds")  # doctest: +SKIP
"""

from repro.api.backends import (
    Backend,
    Capabilities,
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
    require_capable,
    select_backend,
)
from repro.api.runner import RunResult, run
from repro.api.serialize import jsonable, write_json
from repro.api.spec import (
    ARRIVALS,
    POLICIES,
    SERVICES,
    DistributionSpec,
    ExperimentSpec,
    HorizonSpec,
    ScenarioSpec,
    SpecError,
    SystemSpec,
    WorkloadSpec,
)

# Importing the engines module registers the six built-in backends.
import repro.api.engines  # noqa: E402,F401  isort:skip

__all__ = [
    "ARRIVALS",
    "POLICIES",
    "SERVICES",
    "Backend",
    "Capabilities",
    "DistributionSpec",
    "ExperimentSpec",
    "HorizonSpec",
    "RunResult",
    "ScenarioSpec",
    "SpecError",
    "SystemSpec",
    "WorkloadSpec",
    "available_backends",
    "backend_capabilities",
    "get_backend",
    "jsonable",
    "register_backend",
    "require_capable",
    "run",
    "select_backend",
    "write_json",
]
