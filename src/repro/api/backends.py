"""Backend protocol and decorator registry: the "many engines" side.

A *backend* wraps one of the repo's engines — QBD bound models, exact
truncated chain, per-server CTMC simulation, job-level cluster DES,
occupancy fleet engine, mean-field ODE — behind a uniform two-method
surface: declared :class:`Capabilities` plus ``run_once(spec, seed)``.

Backends self-register via :func:`register_backend`::

    @register_backend("fleet")
    class FleetBackend:
        capabilities = Capabilities(...)
        def run_once(self, spec, seed): ...

and every capability mismatch — unsupported policy, distribution, scenario,
pool size — is reported as one consistent :class:`~repro.api.spec.SpecError`
whose message comes from :meth:`Capabilities.why_unsupported`.

Auto-selection (``backend="auto"``) considers only *estimator* backends
(those whose result is a finite-``N`` point estimate of the spec's system:
``exact``, ``ctmc``, ``cluster``, ``fleet``) and picks the cheapest capable
one by ``auto_rank``.  The ``qbd_bounds`` and ``meanfield`` backends answer
a different question (a bracket, respectively the ``N -> infinity`` limit),
so they are never chosen implicitly — ask for them by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Protocol, Tuple, runtime_checkable

from repro.api.spec import ExperimentSpec, SpecError

__all__ = [
    "Capabilities",
    "Backend",
    "register_backend",
    "get_backend",
    "available_backends",
    "backend_capabilities",
    "fallback_chain",
    "recoverable_backend_errors",
    "select_backend",
]


@dataclass(frozen=True)
class Capabilities:
    """What one backend can run, and what kind of answer it returns.

    Parameters
    ----------
    description : str
        One-line summary shown by ``repro-lb backends``.
    policies, arrivals, services : tuple of str
        Supported dispatching policies / arrival processes / service
        distributions (names as in :mod:`repro.api.spec`).
    supports_scenarios : bool
        Whether time-varying scenarios can be played.
    min_servers, max_servers : int / int or None
        Tractable pool-size range (``None`` = unbounded above).
    answer : str
        ``"estimate"`` (stochastic point estimate), ``"exact"``
        (numerical solution), ``"bounds"`` (lower/upper bracket) or
        ``"limit"`` (the ``N -> infinity`` value).
    deterministic : bool
        True when the result does not depend on the seed; replicating a
        deterministic backend is pointless and collapses to one run.
    auto_rank : int or None
        Position in the ``backend="auto"`` preference order (lower =
        preferred); ``None`` excludes the backend from auto-selection.
    """

    description: str
    policies: Tuple[str, ...]
    arrivals: Tuple[str, ...] = ("poisson",)
    services: Tuple[str, ...] = ("exponential",)
    supports_scenarios: bool = False
    min_servers: int = 1
    max_servers: Optional[int] = None
    answer: str = "estimate"
    deterministic: bool = False
    auto_rank: Optional[int] = None

    def why_unsupported(self, spec: ExperimentSpec) -> Optional[str]:
        """Reason this backend cannot run ``spec``, or ``None`` if it can."""
        if spec.policy not in self.policies:
            return f"policy {spec.policy!r} not supported (supported: {', '.join(self.policies)})"
        if spec.workload.arrival.name not in self.arrivals:
            reason = (f"arrival process {spec.workload.arrival.name!r} not supported "
                      f"(supported: {', '.join(self.arrivals)})")
            if spec.workload.arrival.name in ("trace", "mmpp2"):
                # These run only on the cluster DES; the documented escape
                # hatch into the analytical engines is a renewal fit.
                reason += ("; fit the workload to a supported renewal law first "
                           "(repro.traces.fit / `repro-lb trace fit`, see docs/traces.md)")
            return reason
        if spec.workload.service.name not in self.services:
            return (f"service distribution {spec.workload.service.name!r} not supported "
                    f"(supported: {', '.join(self.services)})")
        if spec.scenario is not None and not self.supports_scenarios:
            return "time-varying scenarios are not supported"
        n = spec.system.num_servers
        if n < self.min_servers:
            return f"needs at least {self.min_servers} servers, spec has N={n}"
        if self.max_servers is not None and n > self.max_servers:
            return f"tractable only up to N={self.max_servers}, spec has N={n}"
        return None


@runtime_checkable
class Backend(Protocol):
    """The contract every registered engine adapter satisfies."""

    name: str
    capabilities: Capabilities

    def run_once(self, spec: ExperimentSpec, seed: Optional[int]) -> Dict[str, Any]:
        """Execute the spec once; return a flat metrics mapping.

        The mapping always contains ``"mean_delay"`` (the paper's average
        delay, i.e. mean sojourn time in units of ``1/mu``); any further
        keys are backend-specific extras.  ``seed`` is ignored by
        deterministic backends.
        """
        ...  # pragma: no cover - protocol signature


_REGISTRY: Dict[str, Backend] = {}


def register_backend(name: str) -> Callable[[type], type]:
    """Class decorator: instantiate and register a backend under ``name``."""

    def decorate(cls: type) -> type:
        if name in _REGISTRY:
            raise SpecError(f"backend {name!r} is already registered")
        instance = cls()
        instance.name = name
        if not isinstance(getattr(instance, "capabilities", None), Capabilities):
            raise SpecError(f"backend {name!r} must declare a Capabilities instance")
        _REGISTRY[name] = instance
        return cls

    return decorate


def _ensure_registered() -> None:
    # Engine adapters live in their own module so importing the registry
    # stays cheap; any lookup pulls them in (idempotent — python caches the
    # module, and registration happens once at its import).
    import repro.api.engines  # noqa: F401  (registers on import)


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    _ensure_registered()
    return sorted(_REGISTRY)


def backend_capabilities() -> Dict[str, Capabilities]:
    """Mapping of backend name to its declared capabilities."""
    _ensure_registered()
    return {name: _REGISTRY[name].capabilities for name in sorted(_REGISTRY)}


def get_backend(name: str) -> Backend:
    """Look up a backend by name (``SpecError`` for unknown names)."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise SpecError(
            f"unknown backend {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def require_capable(name: str, spec: ExperimentSpec) -> Backend:
    """Return the named backend, or raise ``SpecError`` explaining why not."""
    backend = get_backend(name)
    reason = backend.capabilities.why_unsupported(spec)
    if reason is not None:
        raise SpecError(f"backend {name!r} cannot run this spec: {reason}")
    return backend


def select_backend(spec: ExperimentSpec, replicable_only: bool = False) -> Backend:
    """Pick the cheapest capable estimator backend for ``spec``.

    Parameters
    ----------
    spec : ExperimentSpec
        The experiment to place.
    replicable_only : bool
        Restrict the choice to stochastic backends (used by the ensemble
        runner, where replicating a deterministic solver is meaningless).

    Raises
    ------
    SpecError
        When no estimator backend can run the spec; the message lists each
        candidate's reason.
    """
    _ensure_registered()
    candidates: List[Tuple[int, str, Backend]] = []
    reasons: List[str] = []
    for name in sorted(_REGISTRY):
        backend = _REGISTRY[name]
        rank = backend.capabilities.auto_rank
        if rank is None:
            continue
        if replicable_only and backend.capabilities.deterministic:
            continue
        reason = backend.capabilities.why_unsupported(spec)
        if reason is None:
            candidates.append((rank, name, backend))
        else:
            reasons.append(f"{name}: {reason}")
    if not candidates:
        detail = "; ".join(reasons) if reasons else "no estimator backends registered"
        raise SpecError(f"no backend can run spec ({spec.describe()}): {detail}")
    candidates.sort(key=lambda item: (item[0], item[1]))
    return candidates[0][2]


def recoverable_backend_errors() -> Tuple[type, ...]:
    """Typed *runtime* failures that justify degrading to another backend.

    A :class:`~repro.api.spec.SpecError` means the experiment itself is
    malformed — falling back would silently answer a different question, so
    it is never recoverable.  What is recoverable is a backend hitting the
    numerical edge of its own validity while the spec remains perfectly
    sensible: the QBD bound model turning unstable as ``rho -> 1``
    (:class:`~repro.core.qbd_solver.UnstableBoundModelError`), a linear
    solve failing (``numpy.linalg.LinAlgError``), or an overflow /
    division breakdown inside an engine (``ArithmeticError``).
    """
    from repro.core.qbd_solver import UnstableBoundModelError

    errors: List[type] = [UnstableBoundModelError, ArithmeticError]
    try:
        import numpy as np

        errors.append(np.linalg.LinAlgError)
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        pass
    return tuple(errors)


def fallback_chain(spec: ExperimentSpec, exclude: Iterable[str] = ()) -> List[Backend]:
    """Capable estimator backends for ``spec`` in auto-preference order.

    The degradation path :func:`repro.api.runner.run` (and the campaign
    workers) walk when a backend raises a recoverable runtime failure:
    every auto-rankable backend that can run the spec, cheapest first,
    minus the ones already tried.  Deliberately restricted to *estimator*
    backends — degrading a bounds/limit answer into an estimate is
    explicitly recorded by the caller, never hidden.
    """
    _ensure_registered()
    tried = set(exclude)
    candidates: List[Tuple[int, str, Backend]] = []
    for name in sorted(_REGISTRY):
        if name in tried:
            continue
        backend = _REGISTRY[name]
        rank = backend.capabilities.auto_rank
        if rank is None:
            continue
        if backend.capabilities.why_unsupported(spec) is None:
            candidates.append((rank, name, backend))
    candidates.sort(key=lambda item: (item[0], item[1]))
    return [backend for _, _, backend in candidates]
