"""``run(spec)``: the single front door to every engine in the package.

One call routes a declarative :class:`~repro.api.spec.ExperimentSpec` to a
capable backend (explicitly named or auto-selected), optionally replicates
it into a confidence-intervalled ensemble, and returns a uniform
:class:`RunResult` — mean delay, CI when replicated, per-backend extras,
and full provenance (the spec itself, the backend, package version, git
describe).  The pre-existing entry points (``analyze_sqd``,
``simulate_fleet``, ``run_ensemble`` …) remain available, but this is the
API the experiments, the CLI and the examples build on.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.api.backends import (
    fallback_chain,
    get_backend,
    recoverable_backend_errors,
    require_capable,
    select_backend,
)
from repro.api.serialize import dumps, write_json
from repro.api.spec import ExperimentSpec, SpecError
from repro.utils.tables import format_table

__all__ = ["RunResult", "run"]


@dataclass(frozen=True)
class RunResult:
    """The unified answer every backend returns through :func:`run`.

    Attributes
    ----------
    spec : ExperimentSpec
        The experiment that was run (full provenance: the result is a
        deterministic function of ``spec`` and ``backend`` alone, up to
        wall-clock noise).
    backend : str
        The backend that actually ran (useful with ``backend="auto"``).
    answer : str
        The backend's answer type: ``"estimate"``, ``"exact"``,
        ``"bounds"`` or ``"limit"``.
    mean_delay : float
        The paper's "average delay" — mean sojourn time in units of
        ``1/mu`` (for ``qbd_bounds`` this is the Theorem 3 lower bound;
        the full bracket sits in ``extras``).
    half_width : float
        Student-t confidence half-width of ``mean_delay`` across
        replications (``nan`` for single runs and deterministic backends).
    confidence : float
        Confidence level of ``half_width``.
    replications : int
        Number of independent replications behind the estimate.
    extras : mapping
        Backend-specific metrics beyond the headline delay (bounds,
        occupancy, throughput, truncation mass, ...).  For replicated runs
        these are across-replication means.
    records : tuple of mapping
        Per-replication raw records (one entry for single runs).
    provenance : mapping
        Package version, git describe, python version, timestamp.
    wall_seconds : float
        Wall-clock time of the whole run.
    """

    spec: ExperimentSpec
    backend: str
    answer: str
    mean_delay: float
    half_width: float
    confidence: float
    replications: int
    extras: Mapping[str, Any] = field(default_factory=dict)
    records: Tuple[Mapping[str, Any], ...] = ()
    provenance: Mapping[str, Any] = field(default_factory=dict)
    wall_seconds: float = float("nan")

    def confidence_interval(self) -> Tuple[float, float]:
        """The two-sided CI of the mean delay (``(nan, nan)`` if unreplicated)."""
        if not math.isfinite(self.half_width):
            return (float("nan"), float("nan"))
        return (self.mean_delay - self.half_width, self.mean_delay + self.half_width)

    @property
    def is_estimate(self) -> bool:
        """True when the result is a stochastic estimate (vs exact/bounds/limit)."""
        return self.answer == "estimate"

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON-ready payload (shared schema with the CLI exports)."""
        return {
            "spec": self.spec.to_dict(),
            "backend": self.backend,
            "answer": self.answer,
            "mean_delay": self.mean_delay,
            "half_width": self.half_width,
            "confidence": self.confidence,
            "replications": self.replications,
            "extras": dict(self.extras),
            "records": [dict(record) for record in self.records],
            "provenance": dict(self.provenance),
            "wall_seconds": self.wall_seconds,
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize through the shared CLI/API JSON dialect."""
        return dumps(self.to_dict(), indent=indent)

    def write_json(self, path) -> "Path":  # noqa: F821 - documentation type
        """Write :meth:`to_json` to ``path`` (parents created); returns the path."""
        return write_json(path, self.to_dict())

    def as_table(self) -> str:
        """Human summary: headline delay plus every extra metric."""
        rows = [["mean_delay", self.mean_delay]]
        if math.isfinite(self.half_width):
            rows.append([f"±{self.confidence:.0%} CI", self.half_width])
        for key in sorted(self.extras):
            rows.append([key, self.extras[key]])
        title = (
            f"{self.backend} [{self.answer}] — {self.spec.describe()}"
            + (f" — {self.replications} replications" if self.replications > 1 else "")
        )
        return format_table(["metric", "value"], rows, title=title)

    def __str__(self) -> str:
        if math.isfinite(self.half_width):
            return (
                f"{self.mean_delay:.5g} ± {self.half_width:.3g} "
                f"({self.confidence:.0%} CI, {self.replications} replications, {self.backend})"
            )
        return f"{self.mean_delay:.5g} ({self.backend})"


def _single_run(backend, spec: ExperimentSpec, seed: Optional[int]) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    metrics = backend.run_once(spec, seed)
    if "mean_delay" not in metrics:
        raise SpecError(f"backend {backend.name!r} returned no 'mean_delay' metric")
    extras = {key: value for key, value in metrics.items() if key != "mean_delay"}
    return metrics, extras


def run(
    spec: Union[ExperimentSpec, str, Mapping[str, Any]],
    backend: str = "auto",
    replications: Optional[int] = None,
    workers: int = 1,
    confidence: float = 0.95,
    target_relative_half_width: Optional[float] = None,
    max_replications: int = 64,
    seed: Optional[int] = None,
    pool=None,
    fallback: bool = True,
) -> RunResult:
    """Run one experiment spec on one backend; the package's main entry point.

    Parameters
    ----------
    spec : ExperimentSpec, str or mapping
        The experiment to run.  A JSON string or a nested mapping is
        converted through :meth:`ExperimentSpec.from_json` /
        :meth:`ExperimentSpec.from_dict` first.
    backend : str
        A registered backend name, or ``"auto"`` to pick the cheapest
        capable estimator (see :func:`repro.api.backends.select_backend`).
        Incapable spec/backend combinations raise :class:`SpecError`.
    replications : int, optional
        Independent replications (``>= 2`` adds a Student-t confidence
        interval).  Deterministic backends always run exactly once.
    workers : int
        Worker processes the replications fan out over.
    confidence : float
        Two-sided confidence level of the reported half-width.
    target_relative_half_width : float, optional
        Adaptive-precision mode: keep adding replications until the CI
        half-width falls below this fraction of the mean (see
        :class:`repro.ensemble.runner.EnsembleConfig`).
    max_replications : int
        Replication cap for the adaptive mode.
    seed : int, optional
        Override for ``spec.seed`` (the spec's own seed is the default).
    pool : multiprocessing.Pool, optional
        Externally managed worker pool (sweeps pay pool start-up once).
    fallback : bool
        Graceful backend degradation (default on).  When the chosen
        backend raises a *typed runtime failure* — the QBD bound model
        turning unstable near saturation, a linear solve breaking down —
        rather than a :class:`SpecError`, the run falls back to the next
        capable estimator backend and records the degradation under
        ``provenance["degraded"]`` (and mirrors it in the extras).  Pass
        ``fallback=False`` to get the raw exception instead.

    Returns
    -------
    RunResult

    Examples
    --------
    >>> from repro import ExperimentSpec, run
    >>> spec = ExperimentSpec.create(num_servers=100, utilization=0.8,
    ...                              num_events=20_000, seed=7)
    >>> result = run(spec, replications=4)
    >>> result.replications
    4
    """
    if isinstance(spec, str):
        spec = ExperimentSpec.from_json(spec)
    elif isinstance(spec, Mapping):
        spec = ExperimentSpec.from_dict(spec)
    elif not isinstance(spec, ExperimentSpec):
        raise SpecError(f"spec must be an ExperimentSpec, JSON string or mapping, got {spec!r}")

    if seed is not None:
        # Fold the override into the spec, so the RunResult's provenance
        # (and any --json export of it) reproduces exactly what ran.
        spec = spec.with_seed(seed)
    engine = select_backend(spec) if backend == "auto" else require_capable(backend, spec)
    wanted = 1 if replications is None else int(replications)
    if wanted < 1:
        raise SpecError(f"replications must be >= 1, got {replications!r}")

    started = time.perf_counter()
    recoverable = recoverable_backend_errors()
    degradations: list = []
    tried = {engine.name}
    while True:
        try:
            return _execute(
                engine,
                spec,
                replications=wanted,
                workers=workers,
                confidence=confidence,
                target_relative_half_width=target_relative_half_width,
                max_replications=max_replications,
                pool=pool,
                started=started,
                degradations=degradations,
            )
        except recoverable as error:
            if not fallback:
                raise
            chain = fallback_chain(spec, exclude=tried)
            if not chain:
                raise
            degradations.append(
                {"backend": engine.name, "error": f"{type(error).__name__}: {error}"}
            )
            engine = chain[0]
            tried.add(engine.name)


def _execute(
    engine,
    spec: ExperimentSpec,
    replications: int,
    workers: int,
    confidence: float,
    target_relative_half_width: Optional[float],
    max_replications: int,
    pool,
    started: float,
    degradations,
) -> RunResult:
    """One attempt on one engine; raises the engine's typed failures."""
    base_seed = spec.seed
    adaptive = target_relative_half_width is not None

    from repro.ensemble.results import provenance  # late: avoids an import cycle

    def result_provenance() -> Dict[str, Any]:
        payload = dict(provenance())
        if degradations:
            payload["degraded"] = [dict(entry) for entry in degradations]
        return payload

    def degraded_extras(extras: Dict[str, Any]) -> Dict[str, Any]:
        if degradations:
            # Mirror the headline fact into the extras so a table render
            # (`repro-lb run`) shows the degradation without JSON spelunking.
            extras["degraded_from"] = ",".join(entry["backend"] for entry in degradations)
        return extras

    if engine.capabilities.deterministic or (replications == 1 and not adaptive):
        metrics, extras = _single_run(engine, spec, base_seed)
        return RunResult(
            spec=spec,
            backend=engine.name,
            answer=engine.capabilities.answer,
            mean_delay=float(metrics["mean_delay"]),
            half_width=float("nan"),
            confidence=confidence,
            replications=1,
            extras=degraded_extras(extras),
            records=(dict(metrics),),
            provenance=result_provenance(),
            wall_seconds=time.perf_counter() - started,
        )

    from repro.ensemble.runner import EnsembleConfig, run_ensemble

    config = EnsembleConfig(
        spec=spec,
        backend=engine.name,
        replications=replications if not adaptive else max(replications, 2),
        workers=workers,
        seed=base_seed,
        confidence=confidence,
        target_relative_half_width=target_relative_half_width,
        max_replications=max_replications,
    )
    ensemble = run_ensemble(config=config, pool=pool)
    statistics = ensemble.delay
    extras = {
        metric: ensemble.statistics(metric).mean
        for metric in ensemble.metric_names()
        if metric not in ensemble.TIMING_KEYS and metric != "mean_delay"
    }
    # Textual provenance keys (e.g. the fleet kernel) are identical across
    # replications; carry the first record's value into the extras.
    for key in ensemble.TEXT_KEYS:
        if key in ensemble.records[0]:
            extras[key] = ensemble.records[0][key]
    return RunResult(
        spec=spec,
        backend=engine.name,
        answer=engine.capabilities.answer,
        mean_delay=statistics.mean,
        half_width=statistics.half_width,
        confidence=confidence,
        replications=ensemble.replications,
        extras=degraded_extras(extras),
        records=tuple(dict(record) for record in ensemble.records),
        provenance=result_provenance(),
        wall_seconds=time.perf_counter() - started,
    )
