"""Conversions between the legacy ``(kind, parameters)`` ensemble dialect
and the spec/backend API.

Until PR 3 the ensemble runner dispatched on a string ``kind`` (``"fleet"``,
``"gillespie"``, ``"cluster"``, ``"scenario"``) with a raw keyword dict.
These helpers translate that dialect losslessly into an
:class:`~repro.api.spec.ExperimentSpec` plus backend name and back, so:

* ``run_ensemble(kind=..., parameters=...)`` and ``EnsembleConfig(kind=...)``
  keep working (with a ``DeprecationWarning``) on top of the spec path, and
* JSONL result stores keep writing the legacy ``kind`` / ``parameters``
  keys next to the new ``spec`` / ``backend`` ones, so readers of old and
  new stores see one schema.

Bitwise fidelity matters more than elegance here: a legacy call converted
to a spec must hand the wrapped simulator *exactly* the arguments the old
worker functions passed, so seeded replications reproduce the pre-refactor
records bit for bit.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Tuple

from repro.api.spec import ExperimentSpec, HorizonSpec, ScenarioSpec, SpecError, SystemSpec

__all__ = ["LEGACY_KINDS", "spec_from_kind", "kind_from_spec"]

#: The legacy ensemble kinds, mapped to (backend, uses_scenario).
LEGACY_KINDS: Dict[str, Tuple[str, bool]] = {
    "cluster": ("cluster", False),
    "fleet": ("fleet", False),
    "gillespie": ("ctmc", False),
    "scenario": ("fleet", True),
}


def _take(parameters: Dict[str, Any], kind: str, *known: str) -> Dict[str, Any]:
    """Pop the known keys; reject leftovers with one consistent SpecError."""
    taken = {key: parameters.pop(key) for key in known if key in parameters}
    if parameters:
        raise SpecError(
            f"unknown parameters for kind {kind!r}: {sorted(parameters)} "
            f"(supported: {sorted(known)})"
        )
    return taken


def spec_from_kind(
    kind: str, parameters: Optional[Mapping[str, Any]] = None, seed: int = 12345
) -> Tuple[ExperimentSpec, str]:
    """Convert a legacy ``(kind, parameters)`` pair into ``(spec, backend)``."""
    if kind not in LEGACY_KINDS:
        raise SpecError(
            f"kind must be one of {tuple(sorted(LEGACY_KINDS))}, got {kind!r}"
        )
    backend, uses_scenario = LEGACY_KINDS[kind]
    remaining = dict(parameters or {})
    if "seed" in remaining:
        raise SpecError(
            "parameters must not carry 'seed' — per-replication seeds are derived "
            "from the ensemble seed"
        )

    scenario = None
    options: Dict[str, Any] = {}
    horizon = HorizonSpec()
    if uses_scenario:
        if "scenario" not in remaining:
            raise SpecError("kind 'scenario' requires a 'scenario' parameter")
        name = remaining.pop("scenario")
        scenario = ScenarioSpec(name, remaining.pop("scenario_parameters", {}))
        taken = _take(remaining, kind, "num_servers", "d", "service_rate", "policy", "with_replacement")
        if "with_replacement" in taken:
            options["with_replacement"] = taken["with_replacement"]
    elif kind == "cluster":
        taken = _take(
            remaining, kind, "num_servers", "d", "utilization", "service_rate", "num_jobs", "warmup_jobs"
        )
        horizon = HorizonSpec(num_jobs=taken.get("num_jobs"))
        if "warmup_jobs" in taken:
            options["warmup_jobs"] = int(taken["warmup_jobs"])
    else:  # fleet / gillespie
        known = ["num_servers", "d", "utilization", "service_rate", "num_events", "warmup_fraction", "policy"]
        if kind == "fleet":
            known += ["start", "with_replacement"]
        taken = _take(remaining, kind, *known)
        horizon = HorizonSpec(
            num_events=taken.get("num_events"),
            warmup_fraction=taken.get("warmup_fraction", 0.1),
        )
        for option in ("start", "with_replacement"):
            if option in taken:
                options[option] = taken[option]

    if "num_servers" not in taken:
        raise SpecError(f"kind {kind!r} requires a 'num_servers' parameter")
    # Legacy kinds matched their simulators' defaults; mirror them so the
    # converted spec replays bit-identically (simulate_fleet is the only
    # legacy simulator with a utilization default).
    utilization = taken.get("utilization")
    if utilization is None and kind == "fleet":
        utilization = 0.9
    spec = ExperimentSpec(
        system=SystemSpec(
            num_servers=int(taken["num_servers"]),
            d=int(taken.get("d", 2)),
            utilization=utilization,
            service_rate=taken.get("service_rate", 1.0),
        ),
        policy=taken.get("policy", "sqd"),
        scenario=scenario,
        horizon=horizon,
        seed=seed if seed is not None else 12345,
        options=options,
    )
    return spec, backend


def kind_from_spec(spec: ExperimentSpec, backend: str) -> Tuple[Optional[str], Dict[str, Any]]:
    """The legacy ``(kind, parameters)`` view of a spec/backend pair.

    Returns ``(None, {})`` for configurations the legacy dialect cannot
    express (it predates non-default workloads) — a wrong-but-plausible
    view would silently replay a *different* experiment from the JSONL
    reproduction records.  For expressible specs, defaults are omitted
    exactly as legacy callers omitted them, so converting back through
    :func:`spec_from_kind` yields an equivalent spec.
    """
    if not spec.workload.is_default:
        return None, {}
    if backend == "fleet" and spec.options.get("kernel", "auto") != "auto":
        # The legacy dialect predates the kernel layer; a view that drops a
        # pinned kernel would replay the experiment on a different loop.
        return None, {}
    system = spec.system
    parameters: Dict[str, Any] = {"num_servers": system.num_servers}
    if spec.scenario is not None:
        kind = "scenario"
        parameters["scenario"] = spec.scenario.name
        if spec.scenario.params:
            parameters["scenario_parameters"] = dict(spec.scenario.params)
        parameters["d"] = system.d
        parameters["policy"] = spec.policy
        if "with_replacement" in spec.options:
            parameters["with_replacement"] = spec.options["with_replacement"]
    elif backend == "cluster":
        kind = "cluster"
        parameters.update({"d": system.d, "utilization": system.utilization})
        if spec.horizon.num_jobs is not None:
            parameters["num_jobs"] = spec.horizon.num_jobs
        if "warmup_jobs" in spec.options:
            parameters["warmup_jobs"] = spec.options["warmup_jobs"]
    else:
        kind = "gillespie" if backend == "ctmc" else "fleet"
        parameters.update({"d": system.d, "utilization": system.utilization})
        if spec.horizon.num_events is not None:
            parameters["num_events"] = spec.horizon.num_events
        if spec.horizon.warmup_fraction != 0.1:
            parameters["warmup_fraction"] = spec.horizon.warmup_fraction
        if kind == "fleet":
            parameters["policy"] = spec.policy
            for option in ("start", "with_replacement"):
                if option in spec.options:
                    parameters[option] = spec.options[option]
        elif spec.policy != "sqd":
            parameters["policy"] = spec.policy
    if system.service_rate != 1.0:
        parameters["service_rate"] = system.service_rate
    return kind, parameters
