"""Declarative experiment specification: one spec, many engines.

An :class:`ExperimentSpec` is a frozen, validated, JSON-round-trippable
description of one load-balancing experiment — the system (``N``, ``d``,
utilization), the workload (arrival process and service distribution), the
dispatching policy, an optional time-varying scenario, the horizon (events
or jobs) and the seed.  The same spec can be handed to any capable backend
(:mod:`repro.api.backends`): the QBD bound models, the exact truncated
chain, the per-server CTMC simulator, the job-level cluster simulator, the
occupancy fleet engine or the mean-field ODE — which is the paper's whole
argument rendered as an API: five methods, one system.

Validation is eager and uniform: every malformed spec raises
:class:`SpecError` (a :class:`~repro.utils.validation.ValidationError`
subclass) naming the offending field, so each of the six engines rejects a
bad configuration with the same exception instead of six different
spellings.

Round-tripping is bitwise: ``ExperimentSpec.from_json(spec.to_json())``
reconstructs an equal spec whose ``to_json()`` is the identical string.
Specs are plain picklable dataclasses, so they travel unchanged to ensemble
worker processes and into JSONL result stores.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.utils.validation import ValidationError

__all__ = [
    "SpecError",
    "DistributionSpec",
    "SystemSpec",
    "WorkloadSpec",
    "ScenarioSpec",
    "HorizonSpec",
    "ExperimentSpec",
    "ARRIVALS",
    "MMPP2_PARAMS",
    "SERVICES",
    "POLICIES",
]


class SpecError(ValidationError):
    """Raised for any invalid experiment spec or spec/backend combination.

    One exception type for the whole API surface: malformed field values,
    unknown distributions/policies/scenarios/backends, and spec/backend
    capability mismatches all raise ``SpecError``.  It subclasses
    :class:`~repro.utils.validation.ValidationError` (itself a
    ``ValueError``), so existing error handling keeps working.
    """


#: Arrival processes a spec may name: renewal laws (``poisson``, ``erlang``,
#: ``hyperexponential``), the two-state Markov-modulated Poisson process
#: ``mmpp2`` (correlated/bursty traffic; shape params ``rate_high``,
#: ``rate_low``, ``switch_to_low``, ``switch_to_high``, rescaled to the
#: system's total rate), and ``trace`` (deterministic replay of a recorded
#: :class:`~repro.traces.trace.ArrivalTrace`; params ``path`` and optional
#: ``rescale``).
ARRIVALS: Tuple[str, ...] = ("poisson", "erlang", "hyperexponential", "mmpp2", "trace")

#: Required numeric shape parameters of an ``mmpp2`` arrival spec.
MMPP2_PARAMS: Tuple[str, ...] = ("rate_high", "rate_low", "switch_to_low", "switch_to_high")

#: Service distributions a spec may name.
SERVICES: Tuple[str, ...] = ("exponential", "erlang", "hyperexponential", "deterministic")

#: Dispatching policies a spec may name (not every backend supports all).
POLICIES: Tuple[str, ...] = ("sqd", "jsq", "random", "round_robin", "jiq", "least_work_left")


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _freeze(value: Any, path: str) -> Any:
    """Normalize a JSON-compatible value so equality survives a round-trip.

    Sequences become tuples (JSON turns tuples into lists; normalizing both
    sides to tuples keeps ``spec == from_json(to_json(spec))``), mapping
    values are frozen recursively, and anything that JSON cannot represent
    is rejected up front with a ``SpecError`` naming the field.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item, path) for item in value)
    if isinstance(value, Mapping):
        return {str(key): _freeze(item, f"{path}.{key}") for key, item in value.items()}
    raise SpecError(f"{path} must be JSON-serializable (number, string, bool, list or mapping), got {value!r}")


def _thaw(value: Any) -> Any:
    """The JSON-facing view of a frozen value (tuples back to lists)."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    if isinstance(value, dict):
        return {key: _thaw(item) for key, item in value.items()}
    return value


@dataclass(frozen=True)
class DistributionSpec:
    """A named distribution with JSON-compatible shape parameters.

    Parameters
    ----------
    name : str
        Distribution family.  Arrival processes use ``"poisson"``,
        ``"erlang"`` (``{"stages": k}``) or ``"hyperexponential"``; service
        distributions additionally allow ``"deterministic"``.
    params : mapping
        Shape parameters; rate/mean normalization is supplied by the system
        spec (utilization and service rate), so the same workload spec can
        be reused at any load.
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check(isinstance(self.name, str) and bool(self.name), f"distribution name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "params", _freeze(self.params, f"{self.name}.params"))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": _thaw(dict(self.params))}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DistributionSpec":
        _check(isinstance(payload, Mapping), f"distribution spec must be a mapping, got {payload!r}")
        return cls(name=payload.get("name", ""), params=payload.get("params", {}))


@dataclass(frozen=True)
class SystemSpec:
    """The finite system of the paper's Section II.

    Parameters
    ----------
    num_servers : int
        Pool size ``N``.
    d : int
        Number of servers polled per arrival (``1 <= d <= N``).
    utilization : float or None
        Per-server traffic intensity ``rho = lambda / mu`` (dimensionless,
        strictly inside ``(0, 1)``).  May be ``None`` only when the
        experiment plays a scenario, which carries its own loads.
    service_rate : float
        Per-server service rate ``mu`` in jobs per time unit; all reported
        delays are in units of ``1/mu``.
    """

    num_servers: int
    d: int = 2
    utilization: Optional[float] = None
    service_rate: float = 1.0

    def __post_init__(self) -> None:
        _check(isinstance(self.num_servers, int) and not isinstance(self.num_servers, bool) and self.num_servers >= 1,
               f"system.num_servers must be an integer >= 1, got {self.num_servers!r}")
        _check(isinstance(self.d, int) and not isinstance(self.d, bool) and 1 <= self.d <= self.num_servers,
               f"system.d must be an integer in [1, num_servers={self.num_servers}], got {self.d!r}")
        if self.utilization is not None:
            _check(isinstance(self.utilization, (int, float)) and not isinstance(self.utilization, bool)
                   and 0.0 < float(self.utilization) < 1.0,
                   f"system.utilization must lie strictly in (0, 1), got {self.utilization!r}")
            object.__setattr__(self, "utilization", float(self.utilization))
        _check(isinstance(self.service_rate, (int, float)) and not isinstance(self.service_rate, bool)
               and float(self.service_rate) > 0.0,
               f"system.service_rate must be > 0, got {self.service_rate!r}")
        object.__setattr__(self, "service_rate", float(self.service_rate))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_servers": self.num_servers,
            "d": self.d,
            "utilization": self.utilization,
            "service_rate": self.service_rate,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SystemSpec":
        _check(isinstance(payload, Mapping) and "num_servers" in payload,
               "system spec must be a mapping with at least 'num_servers'")
        return cls(
            num_servers=payload["num_servers"],
            d=payload.get("d", 2),
            utilization=payload.get("utilization"),
            service_rate=payload.get("service_rate", 1.0),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """Arrival process plus service distribution.

    The default is the paper's base workload: Poisson arrivals of total
    rate ``rho * mu * N`` and exponential service of rate ``mu`` — both
    rates supplied by the :class:`SystemSpec`, so the workload spec itself
    only carries distribution *shapes*.
    """

    arrival: DistributionSpec = field(default_factory=lambda: DistributionSpec("poisson"))
    service: DistributionSpec = field(default_factory=lambda: DistributionSpec("exponential"))

    def __post_init__(self) -> None:
        _check(self.arrival.name in ARRIVALS,
               f"workload.arrival must be one of {ARRIVALS}, got {self.arrival.name!r}")
        _check(self.service.name in SERVICES,
               f"workload.service must be one of {SERVICES}, got {self.service.name!r}")
        if self.arrival.name == "mmpp2":
            for name in MMPP2_PARAMS:
                value = self.arrival.params.get(name)
                _check(isinstance(value, (int, float)) and not isinstance(value, bool)
                       and float(value) >= 0.0,
                       f"workload.arrival['mmpp2'] needs a numeric >= 0 param {name!r}, "
                       f"got {value!r}")
            _check(float(self.arrival.params["rate_high"]) > 0.0,
                   "workload.arrival['mmpp2'] needs rate_high > 0")
            _check(float(self.arrival.params["switch_to_low"]) > 0.0
                   and float(self.arrival.params["switch_to_high"]) > 0.0,
                   "workload.arrival['mmpp2'] needs positive switching rates")
        elif self.arrival.name == "trace":
            path = self.arrival.params.get("path")
            _check(isinstance(path, str) and bool(path),
                   f"workload.arrival['trace'] needs a non-empty 'path' param, got {path!r}")
            rescale = self.arrival.params.get("rescale", True)
            _check(isinstance(rescale, bool),
                   f"workload.arrival['trace'] param 'rescale' must be a bool, got {rescale!r}")

    @property
    def is_default(self) -> bool:
        """True for the paper's Poisson + exponential base workload."""
        return self.arrival.name == "poisson" and self.service.name == "exponential"

    def to_dict(self) -> Dict[str, Any]:
        return {"arrival": self.arrival.to_dict(), "service": self.service.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "WorkloadSpec":
        _check(isinstance(payload, Mapping), f"workload spec must be a mapping, got {payload!r}")
        return cls(
            arrival=DistributionSpec.from_dict(payload.get("arrival", {"name": "poisson"})),
            service=DistributionSpec.from_dict(payload.get("service", {"name": "exponential"})),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A registered time-varying scenario plus its builder parameters."""

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        from repro.fleet.scenarios import available_scenarios

        names = available_scenarios()
        _check(self.name in names, f"scenario.name must be one of {names}, got {self.name!r}")
        object.__setattr__(self, "params", _freeze(self.params, f"scenario[{self.name}].params"))

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "params": _thaw(dict(self.params))}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ScenarioSpec":
        _check(isinstance(payload, Mapping) and "name" in payload,
               "scenario spec must be a mapping with at least 'name'")
        return cls(name=payload["name"], params=payload.get("params", {}))


@dataclass(frozen=True)
class HorizonSpec:
    """How long to run: events for the CTMC engines, jobs for the DES.

    ``None`` means "the backend's own default" (e.g. the fleet engine's
    500 000 events or the cluster simulator's 50 000 jobs), so one spec can
    be handed to engines with different natural horizons.
    """

    num_events: Optional[int] = None
    num_jobs: Optional[int] = None
    warmup_fraction: float = 0.1

    def __post_init__(self) -> None:
        for label, value in (("num_events", self.num_events), ("num_jobs", self.num_jobs)):
            if value is not None:
                _check(isinstance(value, int) and not isinstance(value, bool) and value >= 1,
                       f"horizon.{label} must be an integer >= 1, got {value!r}")
        _check(isinstance(self.warmup_fraction, (int, float)) and not isinstance(self.warmup_fraction, bool)
               and 0.0 <= float(self.warmup_fraction) <= 0.9,
               f"horizon.warmup_fraction must lie in [0, 0.9], got {self.warmup_fraction!r}")
        object.__setattr__(self, "warmup_fraction", float(self.warmup_fraction))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_events": self.num_events,
            "num_jobs": self.num_jobs,
            "warmup_fraction": self.warmup_fraction,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HorizonSpec":
        _check(isinstance(payload, Mapping), f"horizon spec must be a mapping, got {payload!r}")
        return cls(
            num_events=payload.get("num_events"),
            num_jobs=payload.get("num_jobs"),
            warmup_fraction=payload.get("warmup_fraction", 0.1),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment, runnable on any capable backend.

    Parameters
    ----------
    system : SystemSpec
        ``N``, ``d``, utilization and service rate.
    workload : WorkloadSpec
        Arrival process and service distribution (defaults to the paper's
        Poisson + exponential workload).
    policy : str
        Dispatching policy, one of :data:`POLICIES`.
    scenario : ScenarioSpec or None
        Optional time-varying scenario; when set, the system's
        ``utilization`` must be ``None`` (scenarios carry their own loads).
    horizon : HorizonSpec
        Events/jobs to simulate; ignored by the analytical backends.
    seed : int
        Base RNG seed.  Single runs use it directly; replicated runs derive
        per-replication child seeds from it.
    options : mapping
        Backend-specific knobs that are not part of the model itself —
        e.g. ``threshold`` (QBD bound models), ``buffer_size`` (exact
        truncation), ``start`` / ``with_replacement`` (fleet engine),
        ``warmup_jobs`` (cluster DES).  Unknown options are rejected by the
        backend that receives them.

    Examples
    --------
    >>> spec = ExperimentSpec.create(num_servers=10, d=2, utilization=0.9)
    >>> ExperimentSpec.from_json(spec.to_json()) == spec
    True
    """

    system: SystemSpec
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    policy: str = "sqd"
    scenario: Optional[ScenarioSpec] = None
    horizon: HorizonSpec = field(default_factory=HorizonSpec)
    seed: int = 12345
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check(isinstance(self.system, SystemSpec), f"spec.system must be a SystemSpec, got {self.system!r}")
        _check(isinstance(self.workload, WorkloadSpec), f"spec.workload must be a WorkloadSpec, got {self.workload!r}")
        _check(isinstance(self.horizon, HorizonSpec), f"spec.horizon must be a HorizonSpec, got {self.horizon!r}")
        _check(self.policy in POLICIES, f"spec.policy must be one of {POLICIES}, got {self.policy!r}")
        if self.scenario is not None:
            _check(isinstance(self.scenario, ScenarioSpec),
                   f"spec.scenario must be a ScenarioSpec, got {self.scenario!r}")
            # Scenarios carry their own loads; a utilization alongside one
            # would be silently ignored, so reject the combination outright
            # (the CLI enforces the same rule on its flags).
            _check(self.system.utilization is None,
                   "spec.system.utilization cannot be combined with a scenario "
                   "(the scenario defines its own loads)")
        else:
            _check(self.system.utilization is not None,
                   "spec.system.utilization is required unless a scenario is given")
        _check(isinstance(self.seed, int) and not isinstance(self.seed, bool),
               f"spec.seed must be an integer, got {self.seed!r}")
        object.__setattr__(self, "options", _freeze(self.options, "spec.options"))

    # ------------------------------------------------------------------ #
    # Construction conveniences
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        num_servers: int,
        d: int = 2,
        utilization: Optional[float] = None,
        service_rate: float = 1.0,
        arrival: str = "poisson",
        arrival_params: Optional[Mapping[str, Any]] = None,
        service: str = "exponential",
        service_params: Optional[Mapping[str, Any]] = None,
        policy: str = "sqd",
        scenario: Optional[str] = None,
        scenario_params: Optional[Mapping[str, Any]] = None,
        num_events: Optional[int] = None,
        num_jobs: Optional[int] = None,
        warmup_fraction: float = 0.1,
        seed: int = 12345,
        **options: Any,
    ) -> "ExperimentSpec":
        """Build a spec from flat keyword arguments.

        Every extra keyword argument lands in :attr:`options` — e.g.
        ``ExperimentSpec.create(num_servers=6, utilization=0.9, threshold=2)``.
        """
        return cls(
            system=SystemSpec(num_servers=num_servers, d=d, utilization=utilization, service_rate=service_rate),
            workload=WorkloadSpec(
                arrival=DistributionSpec(arrival, arrival_params or {}),
                service=DistributionSpec(service, service_params or {}),
            ),
            policy=policy,
            scenario=None if scenario is None else ScenarioSpec(scenario, scenario_params or {}),
            horizon=HorizonSpec(num_events=num_events, num_jobs=num_jobs, warmup_fraction=warmup_fraction),
            seed=seed,
            options=options,
        )

    def with_seed(self, seed: int) -> "ExperimentSpec":
        """A copy of this spec with a different base seed."""
        return replace(self, seed=seed)

    def option(self, name: str, default: Any = None) -> Any:
        """One backend option, with a default."""
        return self.options.get(name, default)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, Any]:
        """Plain nested dict (JSON types only)."""
        return {
            "system": self.system.to_dict(),
            "workload": self.workload.to_dict(),
            "policy": self.policy,
            "scenario": None if self.scenario is None else self.scenario.to_dict(),
            "horizon": self.horizon.to_dict(),
            "seed": self.seed,
            "options": _thaw(dict(self.options)),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        _check(isinstance(payload, Mapping) and "system" in payload,
               "experiment spec must be a mapping with at least 'system'")
        unknown = set(payload) - {"system", "workload", "policy", "scenario", "horizon", "seed", "options"}
        _check(not unknown, f"unknown experiment spec fields: {sorted(unknown)}")
        scenario = payload.get("scenario")
        return cls(
            system=SystemSpec.from_dict(payload["system"]),
            workload=WorkloadSpec.from_dict(payload.get("workload", {})),
            policy=payload.get("policy", "sqd"),
            scenario=None if scenario is None else ScenarioSpec.from_dict(scenario),
            horizon=HorizonSpec.from_dict(payload.get("horizon", {})),
            seed=payload.get("seed", 12345),
            options=payload.get("options", {}),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON: sorted keys, so the round-trip is bitwise stable."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SpecError(f"experiment spec is not valid JSON: {error}") from None
        return cls.from_dict(payload)

    # ------------------------------------------------------------------ #
    # Display
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """One-line human summary, e.g. ``sqd N=50 d=2 rho=0.85``."""
        parts = [self.policy, f"N={self.system.num_servers}", f"d={self.system.d}"]
        if self.scenario is not None:
            parts.append(f"scenario={self.scenario.name}")
        else:
            parts.append(f"rho={self.system.utilization:g}")
        if not self.workload.is_default:
            parts.append(f"{self.workload.arrival.name}/{self.workload.service.name}")
        return " ".join(parts)
