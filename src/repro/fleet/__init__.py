"""Occupancy-based large-N fleet simulation and mean-field limits.

The per-job simulator (:mod:`repro.simulation.cluster`) and the per-server
Gillespie CTMC (:mod:`repro.simulation.gillespie`) both pay O(N) per event in
one way or another, which caps them at a few hundred servers.  This package
represents the cluster by its *occupancy vector* — the number of servers with
at least ``k`` jobs — under which SQ(d), JSQ and random dispatching are all
Markov with event cost O(queue depth), independent of ``N``:

* :mod:`repro.fleet.occupancy` — the exact occupancy CTMC state and its
  (numpy-vectorized) transition probabilities,
* :mod:`repro.fleet.engine` — a batched Gillespie driver over occupancy
  state for ``N`` up to 10^6, with delay recovered via Little's law,
* :mod:`repro.fleet.meanfield` — a dependency-free RK4 integrator for the
  power-of-d mean-field ODE and its fixed point (the N -> infinity limit
  the paper's Eq. 16 is built on),
* :mod:`repro.fleet.scenarios` — a registry of time-varying workloads
  (constant load, ramps, flash crowds, server-pool resizing).
"""

from repro.fleet.occupancy import OccupancyState
from repro.fleet.engine import (
    FleetResult,
    FleetSimulation,
    ScenarioResult,
    run_scenario,
    simulate_fleet,
)
from repro.fleet.meanfield import (
    MeanFieldTrajectory,
    integrate_meanfield,
    meanfield_delay,
    meanfield_fixed_point,
    meanfield_mean_queue_length,
)
from repro.fleet.scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioPhase,
    available_scenarios,
    get_scenario,
)

__all__ = [
    "OccupancyState",
    "FleetSimulation",
    "FleetResult",
    "ScenarioResult",
    "simulate_fleet",
    "run_scenario",
    "MeanFieldTrajectory",
    "integrate_meanfield",
    "meanfield_fixed_point",
    "meanfield_delay",
    "meanfield_mean_queue_length",
    "Scenario",
    "ScenarioPhase",
    "SCENARIOS",
    "get_scenario",
    "available_scenarios",
]
