"""Mean-field (N -> infinity) limit of power-of-d load balancing.

As ``N`` grows, the occupancy fractions ``s_k(t)`` = fraction of servers with
at least ``k`` jobs concentrate on the deterministic hydrodynamic limit
(Mitzenmacher; Aghajani & Ramanan, arXiv:1707.02005)

.. math:: \\dot s_k = \\lambda (s_{k-1}^d - s_k^d) - (s_k - s_{k+1}),
          \\qquad k \\ge 1,\\ s_0 = 1 ,

for per-server arrival rate ``lambda`` and unit service rate.  Its unique
fixed point is ``s_k = lambda^{(d^k - 1)/(d - 1)}`` (Agarwal & Ramanan,
arXiv:2008.08510 study the invariant states in general), whose mean queue
length divided by ``lambda`` is exactly the paper's asymptotic delay Eq. (16)
— so this module supplies both the *stationary* asymptote the paper brackets
and the *transient* prediction the fleet simulator's scenarios can be
checked against.

Everything here is dependency-free (no numpy): a classic fixed-step RK4 on a
truncated level ladder, sized so the truncation error is far below the
integration tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.utils.validation import ValidationError, check_in_range, check_integer, check_positive

__all__ = [
    "MeanFieldTrajectory",
    "integrate_meanfield",
    "meanfield_fixed_point",
    "meanfield_mean_queue_length",
    "meanfield_delay",
]


def meanfield_fixed_point(
    utilization: float, d: int, tolerance: float = 1e-14, max_levels: int = 200
) -> List[float]:
    """Stationary occupancy fractions ``s_k = lambda^{(d^k - 1)/(d - 1)}``.

    The list starts at ``s_0 = 1`` and is truncated once a term falls below
    ``tolerance``.  ``d = 1`` degenerates to the M/M/1 geometric profile.
    """
    check_in_range("utilization", utilization, 0.0, 1.0)
    if utilization >= 1.0:
        raise ValidationError("the mean-field fixed point requires utilization < 1")
    d = check_integer("d", d, minimum=1)
    check_integer("max_levels", max_levels, minimum=1)
    fractions = [1.0]
    if utilization == 0.0:
        return fractions
    for k in range(1, max_levels + 1):
        exponent = k if d == 1 else (d**k - 1) / (d - 1)
        term = utilization**exponent
        fractions.append(term)
        if term < tolerance:
            break
    return fractions


def meanfield_mean_queue_length(utilization: float, d: int, tolerance: float = 1e-14) -> float:
    """Stationary mean jobs per server, ``sum_{k >= 1} s_k``."""
    check_in_range("utilization", utilization, 0.0, 1.0)
    if utilization >= 1.0:
        raise ValidationError("the mean-field fixed point requires utilization < 1")
    if check_integer("d", d, minimum=1) == 1:
        # Geometric profile: the tail decays only singly exponentially, so
        # sum it in closed form instead of truncating the ladder.
        return utilization / (1.0 - utilization)
    return sum(meanfield_fixed_point(utilization, d, tolerance=tolerance)[1:])


def meanfield_delay(utilization: float, d: int, tolerance: float = 1e-14) -> float:
    """Stationary mean sojourn time via Little's law, ``sum_{k>=1} s_k / lambda``.

    Parameters
    ----------
    utilization : float
        Per-server traffic intensity ``rho = lambda / mu`` (dimensionless,
        in ``[0, 1)``) — not a raw arrival rate.
    d : int
        Number of servers polled per arrival.
    tolerance : float
        Truncation threshold of the occupancy ladder.

    Returns
    -------
    float
        Mean sojourn time of the ``N -> infinity`` limit, in units of
        ``1/mu`` (mean service times); ``1.0`` at zero load.

    Notes
    -----
    Algebraically identical to the paper's Eq. (16)
    (:func:`repro.core.asymptotic.asymptotic_delay`); computed from the ODE
    fixed point as an independent cross-check.
    """
    check_in_range("utilization", utilization, 0.0, 1.0)
    if utilization == 0.0:
        return 1.0
    return meanfield_mean_queue_length(utilization, d, tolerance=tolerance) / utilization


@dataclass(frozen=True)
class MeanFieldTrajectory:
    """RK4 solution of the mean-field ODE on a truncated level ladder."""

    utilization: float
    d: int
    times: List[float]
    mean_queue_lengths: List[float]
    final_state: List[float]
    states: Optional[List[List[float]]] = None

    @property
    def final_mean_queue_length(self) -> float:
        return self.mean_queue_lengths[-1]

    @property
    def final_delay(self) -> float:
        """Little's-law delay of the final state (meaningful near stationarity)."""
        if self.utilization == 0.0:
            return 1.0
        return self.final_mean_queue_length / self.utilization


def _rhs(state: List[float], utilization: float, d: int) -> List[float]:
    """Right-hand side of the ODE; ``state[0] = 1`` is a fixed boundary."""
    size = len(state)
    derivative = [0.0] * size
    for k in range(1, size):
        inflow = state[k - 1] ** d - state[k] ** d
        outflow = state[k] - (state[k + 1] if k + 1 < size else 0.0)
        derivative[k] = utilization * inflow - outflow
    return derivative


def integrate_meanfield(
    utilization: float,
    d: int,
    t_end: float,
    dt: float = 0.02,
    initial: Optional[Sequence[float]] = None,
    max_levels: int = 64,
    store_states: bool = False,
) -> MeanFieldTrajectory:
    """Integrate the power-of-d mean-field ODE with fixed-step RK4.

    Parameters
    ----------
    utilization:
        Per-server arrival rate ``lambda`` (unit service rate).  Transient
        overload (``lambda >= 1``) is allowed — queues then grow without
        bound, which is exactly what flash-crowd scenarios probe.
    initial:
        Starting occupancy fractions (``s_0`` may be omitted or given as 1).
        Defaults to an empty system.
    max_levels:
        Truncation depth of the level ladder.  The profile decays doubly
        exponentially for ``d >= 2``, so the default is conservative.
    """
    check_in_range("utilization", utilization, 0.0, 10.0)
    d = check_integer("d", d, minimum=1)
    check_positive("t_end", t_end)
    check_positive("dt", dt)
    check_integer("max_levels", max_levels, minimum=2)

    state = [1.0] + [0.0] * max_levels
    if initial is not None:
        values = list(initial)
        if values and abs(values[0] - 1.0) > 1e-12:
            raise ValidationError("initial occupancy must have s_0 = 1")
        for k in range(1, min(len(values), max_levels + 1)):
            state[k] = check_in_range(f"initial[{k}]", values[k], 0.0, 1.0)

    steps = max(1, int(math.ceil(t_end / dt)))
    step = t_end / steps
    times = [0.0]
    mean_queue_lengths = [sum(state[1:])]
    states: Optional[List[List[float]]] = [list(state)] if store_states else None

    for index in range(steps):
        k1 = _rhs(state, utilization, d)
        mid1 = [s + 0.5 * step * g for s, g in zip(state, k1)]
        k2 = _rhs(mid1, utilization, d)
        mid2 = [s + 0.5 * step * g for s, g in zip(state, k2)]
        k3 = _rhs(mid2, utilization, d)
        end = [s + step * g for s, g in zip(state, k3)]
        k4 = _rhs(end, utilization, d)
        state = [
            min(1.0, max(0.0, s + step * (a + 2.0 * b + 2.0 * c + e) / 6.0))
            for s, a, b, c, e in zip(state, k1, k2, k3, k4)
        ]
        state[0] = 1.0
        times.append((index + 1) * step)
        mean_queue_lengths.append(sum(state[1:]))
        if states is not None:
            states.append(list(state))

    return MeanFieldTrajectory(
        utilization=float(utilization),
        d=d,
        times=times,
        mean_queue_lengths=mean_queue_lengths,
        final_state=state,
        states=states,
    )
