"""Exact occupancy-vector state of an exponential SQ(d)/JSQ/random cluster.

Instead of per-server queue lengths, the cluster is represented by the
occupancy vector ``F`` with ``F[k]`` = number of servers holding at least
``k`` jobs (``F[0] = N`` always).  Because servers are exchangeable under
Poisson arrivals, exponential service and any dispatching rule that depends
only on the *queue lengths* of the polled servers, the occupancy vector is
itself a CTMC with the same law as the per-server chain simulated by
:func:`repro.simulation.gillespie.simulate_sqd_ctmc`:

* an arrival joining a server with exactly ``k`` jobs moves ``F[k+1] += 1``,
* a departure from a server with exactly ``k`` jobs moves ``F[k] -= 1``.

For SQ(d) polling ``d`` *distinct* servers (matching
:class:`repro.policies.sqd.PowerOfD`), the probability that the shortest
polled server has at least ``k`` jobs is the hypergeometric ratio
``C(F[k], d) / C(N, d)``; with replacement it is ``(F[k]/N)**d``, the form
the mean-field ODE of :mod:`repro.fleet.meanfield` inherits.  Either way one
event costs O(queue depth), not O(N) — the representation that makes the
N = 10^4..10^6 regimes reachable (cf. Aghajani & Ramanan, arXiv:1707.02005).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.utils.validation import ValidationError, check_integer

__all__ = ["OccupancyState"]


class OccupancyState:
    """Mutable occupancy vector ``F[k]`` = #servers with >= ``k`` jobs.

    The canonical storage is the plain Python list :attr:`levels` (fast to
    index and mutate in a scalar event loop); ``levels[0]`` is the number of
    servers and the list carries no trailing zeros.  The sampling/update
    methods below are the *reference implementation* of the transition law:
    the hot loop in :class:`repro.fleet.engine.FleetSimulation` inlines the
    same scans over :attr:`levels` for speed (plus lazy statistics flushing
    the methods don't carry), and the tests cross-check the two against the
    vectorized probabilities.  The numpy-facing helpers
    (:meth:`fractions`, :meth:`arrival_level_probabilities`,
    :meth:`transition_rates`) exist for tests, analysis and the mean-field
    comparison and are vectorized over levels.
    """

    __slots__ = ("levels", "total_jobs")

    def __init__(self, levels: Sequence[int]):
        levels = [int(x) for x in levels]
        if not levels or levels[0] < 1:
            raise ValidationError("occupancy vector needs levels[0] = num_servers >= 1")
        for k in range(1, len(levels)):
            if levels[k] < 0 or levels[k] > levels[k - 1]:
                raise ValidationError(
                    f"occupancy vector must be non-increasing and non-negative, got {levels!r}"
                )
        while len(levels) > 1 and levels[-1] == 0:
            levels.pop()
        self.levels: List[int] = levels
        self.total_jobs: int = sum(levels[1:])

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def empty(cls, num_servers: int) -> "OccupancyState":
        """All servers idle."""
        check_integer("num_servers", num_servers, minimum=1)
        return cls([num_servers])

    @classmethod
    def from_queue_lengths(cls, queue_lengths: Iterable[int]) -> "OccupancyState":
        """Build the occupancy vector of an explicit per-server queue vector."""
        lengths = [check_integer("queue length", int(q), minimum=0) for q in queue_lengths]
        if not lengths:
            raise ValidationError("need at least one server")
        levels = [len(lengths)]
        for k in range(1, (max(lengths) if lengths else 0) + 1):
            levels.append(sum(1 for q in lengths if q >= k))
        return cls(levels)

    @classmethod
    def from_fractions(cls, num_servers: int, fractions: Sequence[float]) -> "OccupancyState":
        """Round the fraction profile ``s_k`` (e.g. a mean-field fixed point).

        Useful to start a large-N simulation near stationarity instead of
        empty, cutting the warm-up transient from O(1/(1-rho)) time units to
        nearly nothing.  Monotonicity is enforced after rounding.
        """
        check_integer("num_servers", num_servers, minimum=1)
        levels = [num_servers]
        for k in range(1, len(fractions)):
            count = min(levels[k - 1], int(round(num_servers * float(fractions[k]))))
            if count <= 0:
                break
            levels.append(count)
        return cls(levels)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def num_servers(self) -> int:
        return self.levels[0]

    @property
    def busy_servers(self) -> int:
        return self.levels[1] if len(self.levels) > 1 else 0

    @property
    def max_queue_length(self) -> int:
        return len(self.levels) - 1

    def num_with_at_least(self, k: int) -> int:
        """Number of servers holding at least ``k`` jobs."""
        check_integer("k", k, minimum=0)
        return self.levels[k] if k < len(self.levels) else 0

    def num_with_exactly(self, k: int) -> int:
        """Number of servers holding exactly ``k`` jobs."""
        return self.num_with_at_least(k) - self.num_with_at_least(k + 1)

    def mean_queue_length(self) -> float:
        """Average number of jobs per server."""
        return self.total_jobs / self.levels[0]

    def fractions(self) -> np.ndarray:
        """Occupancy fractions ``s_k = F[k] / N`` as a numpy vector."""
        return np.asarray(self.levels, dtype=float) / self.levels[0]

    def queue_length_counts(self) -> List[int]:
        """Number of servers with exactly ``k`` jobs, ``k = 0 .. max``."""
        return [self.num_with_exactly(k) for k in range(len(self.levels))]

    # ------------------------------------------------------------------ #
    # Transition law (vectorized, for tests / analysis)
    # ------------------------------------------------------------------ #
    def poll_ge_probability(self, k: int, d: int, with_replacement: bool = False) -> float:
        """P(the shortest of ``d`` polled servers has >= ``k`` jobs)."""
        d = check_integer("d", d, minimum=1, maximum=self.levels[0])
        m = self.num_with_at_least(k)
        n = self.levels[0]
        if with_replacement:
            return (m / n) ** d
        if m < d:
            return 0.0
        p = 1.0
        for j in range(d):
            p *= (m - j) / (n - j)
        return p

    def arrival_level_probabilities(self, d: int, with_replacement: bool = False) -> np.ndarray:
        """P(an SQ(d) arrival joins a server with exactly ``k`` jobs), vectorized.

        Entry ``k`` is the probability that the arrival increments ``F[k+1]``;
        the vector sums to one.  ``d = 1`` is uniform random dispatching.
        """
        d = check_integer("d", d, minimum=1, maximum=self.levels[0])
        counts = np.asarray(self.levels + [0], dtype=float)
        n = float(self.levels[0])
        if with_replacement:
            ge = (counts / n) ** d
        else:
            offsets = np.arange(d, dtype=float)
            numerators = counts[:, None] - offsets[None, :]
            ge = np.where(
                counts >= d,
                np.prod(np.maximum(numerators, 0.0) / (n - offsets)[None, :], axis=1),
                0.0,
            )
        return ge[:-1] - ge[1:]

    def departure_level_probabilities(self) -> np.ndarray:
        """P(the next departure leaves a server with exactly ``k`` jobs), k >= 1."""
        if self.busy_servers == 0:
            return np.zeros(0)
        counts = np.asarray(self.levels + [0], dtype=float)
        return (counts[1:-1] - counts[2:]) / counts[1]

    def transition_rates(
        self,
        arrival_rate: float,
        service_rate: float = 1.0,
        d: int = 2,
        with_replacement: bool = False,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Per-level CTMC rates ``(arrival_rates, departure_rates)``.

        ``arrival_rates[k]`` is the rate of the transition ``F[k+1] += 1``
        (total arrival rate split over join levels) and
        ``departure_rates[k]`` the rate of ``F[k+1] -= 1`` (one entry per
        occupied level, ``service_rate`` times the number of servers with
        exactly ``k+1`` jobs).  Their sum is the total jump rate out of the
        current state.
        """
        arrivals = arrival_rate * self.arrival_level_probabilities(d, with_replacement)
        counts = np.asarray(self.levels + [0], dtype=float)
        departures = service_rate * (counts[1:-1] - counts[2:])
        return arrivals, departures

    # ------------------------------------------------------------------ #
    # O(queue depth) event sampling / application
    # ------------------------------------------------------------------ #
    def sample_arrival_level(self, u: float, d: int, with_replacement: bool = False) -> int:
        """Map a uniform variate to the queue length of the server joined.

        Scans levels upward until the poll-``>= k`` probability drops below
        ``u``; expected cost is O(mean queue length), independent of ``N``.
        """
        levels = self.levels
        n = levels[0]
        k = 0
        if with_replacement:
            threshold = (u ** (1.0 / d)) * n if d > 1 else u * n
            while k + 1 < len(levels) and levels[k + 1] > threshold:
                k += 1
            return k
        while k + 1 < len(levels):
            m = levels[k + 1]
            if m < d:
                break
            p = 1.0
            for j in range(d):
                p *= (m - j) / (n - j)
            if p <= u:
                break
            k += 1
        return k

    def sample_jsq_level(self) -> int:
        """Queue length joined under JSQ: the minimum over all servers."""
        levels = self.levels
        n = levels[0]
        k = 0
        while k + 1 < len(levels) and levels[k + 1] == n:
            k += 1
        return k

    def sample_departure_level(self, u: float) -> int:
        """Queue length (before departure) of a uniformly random busy server."""
        levels = self.levels
        if len(levels) < 2:
            raise ValidationError("no busy server to depart from")
        r = u * levels[1]
        k = 1
        while k + 1 < len(levels) and levels[k + 1] > r:
            k += 1
        return k

    def apply_arrival(self, level: int) -> None:
        """Admit one job to a server currently holding ``level`` jobs."""
        levels = self.levels
        if level + 1 == len(levels):
            levels.append(1)
        else:
            levels[level + 1] += 1
        self.total_jobs += 1

    def apply_departure(self, level: int) -> None:
        """Complete one job at a server currently holding ``level`` jobs."""
        levels = self.levels
        if level < 1 or level >= len(levels) or levels[level] <= (levels[level + 1] if level + 1 < len(levels) else 0):
            raise ValidationError(f"no server with exactly {level} jobs to depart from")
        levels[level] -= 1
        while len(levels) > 1 and levels[-1] == 0:
            levels.pop()
        self.total_jobs -= 1

    def resize(self, num_servers: int) -> int:
        """Grow or shrink the pool; only *idle* servers can be removed.

        Returns the actual new pool size: shrinking clamps at the number of
        busy servers (running jobs are never killed), mirroring how real
        autoscalers drain instances before decommissioning them.
        """
        check_integer("num_servers", num_servers, minimum=1)
        actual = max(num_servers, self.busy_servers)
        self.levels[0] = actual
        return actual

    def copy(self) -> "OccupancyState":
        return OccupancyState(list(self.levels))

    def __repr__(self) -> str:
        return f"OccupancyState(levels={self.levels!r})"
