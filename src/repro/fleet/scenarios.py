"""Registry of time-varying fleet workloads.

A :class:`Scenario` is a sequence of piecewise-constant phases — per-server
arrival rate and pool-size scale — that the occupancy engine
(:func:`repro.fleet.engine.run_scenario`) plays back while carrying the
cluster state across phase boundaries.  Piecewise-constant segments keep the
Gillespie dynamics exact (no thinning needed) while still expressing the
workloads that matter at production scale: diurnal ramps, flash crowds and
autoscaler-style pool resizing.

Scenarios are N-agnostic: phases scale the engine's base pool size through
``server_scale``, so the same scenario runs at N = 100 and N = 10^6.
Builders are registered in :data:`SCENARIOS` and resolved by name through
:func:`get_scenario`, which is what the CLI's ``fleet --scenario`` flag uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.utils.validation import ValidationError, check_in_range, check_integer, check_positive

__all__ = [
    "ScenarioPhase",
    "Scenario",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "available_scenarios",
]


@dataclass(frozen=True)
class ScenarioPhase:
    """One piecewise-constant segment of a workload.

    Parameters
    ----------
    duration : float
        Segment length in units of ``1/mu`` (mean service times).  A
        zero-duration segment is legal: it contributes no simulated time but
        still applies its load/pool reconfiguration, which is how a
        flash-crowd spike can land at ``t = 0`` or a resize can be
        instantaneous.
    utilization : float
        Per-server arrival rate relative to the service rate (dimensionless
        ``rho = lambda / mu``); transient overload (>= 1) is permitted — the
        occupancy engine handles growing queues and the mean-field ODE
        predicts the same ramp-up.
    server_scale : float
        Multiplies the engine's base pool size (shrinking only removes idle
        servers, see :meth:`OccupancyState.resize`).
    label : str
        Display name of the phase in result tables.
    """

    duration: float
    utilization: float
    server_scale: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        check_positive("duration", self.duration, strict=False)
        check_in_range("utilization", self.utilization, 0.0, 10.0)
        check_positive("server_scale", self.server_scale)


@dataclass(frozen=True)
class Scenario:
    """A named sequence of phases plus a stationary warm-up period.

    Individual phases may have zero duration (instantaneous
    reconfiguration), but the scenario as a whole must simulate for a
    positive amount of time — otherwise there is nothing to measure.
    """

    name: str
    description: str
    phases: Tuple[ScenarioPhase, ...]
    warmup_time: float = 0.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValidationError("a scenario needs at least one phase")
        if self.warmup_time < 0:
            raise ValidationError("warmup_time must be >= 0")
        if self.total_duration <= 0:
            raise ValidationError(
                "a scenario needs a positive total duration (every phase has duration 0)"
            )

    @property
    def total_duration(self) -> float:
        return sum(phase.duration for phase in self.phases)


ScenarioBuilder = Callable[..., Scenario]

SCENARIOS: Dict[str, ScenarioBuilder] = {}


def register_scenario(name: str) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Decorator adding a builder to the :data:`SCENARIOS` registry."""

    def decorate(builder: ScenarioBuilder) -> ScenarioBuilder:
        SCENARIOS[name] = builder
        return builder

    return decorate


def get_scenario(name: str, **parameters) -> Scenario:
    """Build a registered scenario by name, forwarding keyword overrides."""
    if name not in SCENARIOS:
        raise ValidationError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIOS))}"
        )
    return SCENARIOS[name](**parameters)


def available_scenarios() -> List[str]:
    return sorted(SCENARIOS)


# ---------------------------------------------------------------------- #
# Built-in scenarios
# ---------------------------------------------------------------------- #
@register_scenario("constant")
def constant_load(utilization: float = 0.9, duration: float = 50.0, warmup_time: float = 10.0) -> Scenario:
    """Stationary load — the baseline every other scenario deviates from."""
    return Scenario(
        name="constant",
        description=f"constant per-server load {utilization}",
        phases=(ScenarioPhase(duration=duration, utilization=utilization, label="steady"),),
        warmup_time=warmup_time,
    )


@register_scenario("ramp")
def load_ramp(
    start_utilization: float = 0.5,
    end_utilization: float = 0.95,
    steps: int = 6,
    total_duration: float = 60.0,
    warmup_time: float = 10.0,
) -> Scenario:
    """A staircase ramp between two load levels (diurnal traffic growth)."""
    steps = check_integer("steps", steps, minimum=2)
    span = end_utilization - start_utilization
    phases = tuple(
        ScenarioPhase(
            duration=total_duration / steps,
            utilization=start_utilization + span * index / (steps - 1),
            label=f"ramp {index + 1}/{steps}",
        )
        for index in range(steps)
    )
    return Scenario(
        name="ramp",
        description=f"load ramp {start_utilization} -> {end_utilization} in {steps} steps",
        phases=phases,
        warmup_time=warmup_time,
    )


@register_scenario("flash-crowd")
def flash_crowd(
    base_utilization: float = 0.7,
    peak_utilization: float = 1.4,
    base_duration: float = 10.0,
    peak_duration: float = 5.0,
    recovery_duration: float = 30.0,
    warmup_time: float = 10.0,
) -> Scenario:
    """A short overload burst followed by drain-down at the base load.

    ``base_duration=0`` puts the spike at ``t = 0`` — the crowd hits the
    moment measurement starts, with no quiet lead-in phase.
    """
    phases = (
        ScenarioPhase(duration=base_duration, utilization=base_utilization, label="base"),
        ScenarioPhase(duration=peak_duration, utilization=peak_utilization, label="spike"),
        ScenarioPhase(duration=recovery_duration, utilization=base_utilization, label="recovery"),
    )
    return Scenario(
        name="flash-crowd",
        description=f"flash crowd {base_utilization} -> {peak_utilization} -> {base_utilization}",
        phases=phases,
        warmup_time=warmup_time,
    )


@register_scenario("resize")
def pool_resize(
    utilization: float = 0.8,
    scale_up: float = 1.5,
    scale_down: float = 0.75,
    phase_duration: float = 15.0,
    warmup_time: float = 10.0,
) -> Scenario:
    """Autoscaler-style pool resizing at constant offered per-server load.

    Note the per-server utilization is held fixed, so the *total* arrival
    rate follows the pool size — the interesting effect is the occupancy
    redistribution when servers join empty or drain away idle.
    """
    phases = (
        ScenarioPhase(duration=phase_duration, utilization=utilization, server_scale=1.0, label="baseline"),
        ScenarioPhase(duration=phase_duration, utilization=utilization, server_scale=scale_up, label="scaled up"),
        ScenarioPhase(duration=phase_duration, utilization=utilization, server_scale=scale_down, label="scaled down"),
        ScenarioPhase(duration=phase_duration, utilization=utilization, server_scale=1.0, label="restored"),
    )
    return Scenario(
        name="resize",
        description=f"server-pool resizing x{scale_up} then x{scale_down} at load {utilization}",
        phases=phases,
        warmup_time=warmup_time,
    )
