"""Batched Gillespie driver over occupancy state for N up to 10^6.

The driver jumps from event to event on the occupancy CTMC of
:mod:`repro.fleet.occupancy`: the total jump rate is ``lambda * N`` (arrivals)
plus ``mu * F[1]`` (one departure stream per busy server).  The hot loop
itself is pluggable since PR 4: it is delegated to an event *kernel* from
:mod:`repro.kernels` — the scalar ``python`` reference loop, the vectorized
``uniformized`` chunk kernel (roughly 3x the events/s), or ``auto`` to pick
the fastest kernel that supports the ``(policy, d, with_replacement)``
combination.  Kernels share one law and one statistics contract; see
``docs/performance.md``.

Per-level occupancy time-averages are maintained lazily: each event changes
exactly one level, so the accumulator for that level alone is flushed with
the time elapsed since *its* last change — event cost stays O(1) regardless
of how many levels are tracked.  Mean delay is recovered from the
time-averaged number of jobs through (distributional) Little's law with the
*observed* arrival rate, which stays correct under the time-varying
scenarios of :mod:`repro.fleet.scenarios`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.fleet.meanfield import meanfield_fixed_point
from repro.fleet.occupancy import OccupancyState
from repro.fleet.scenarios import Scenario
from repro.kernels import resolve_kernel
from repro.utils.seeding import spawn_rngs
from repro.utils.tables import format_table
from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_integer,
    check_positive,
)

__all__ = [
    "FleetResult",
    "FleetSimulation",
    "ScenarioResult",
    "simulate_fleet",
    "run_scenario",
]

_POLICIES = ("sqd", "jsq", "random")


@dataclass(frozen=True)
class FleetResult:
    """Time-average statistics of one measurement window."""

    num_servers: int
    d: int
    policy: str
    utilization: float
    service_rate: float
    mean_jobs_in_system: float
    mean_queue_length: float
    mean_sojourn_time: float
    mean_waiting_time: float
    occupancy_fractions: np.ndarray
    mean_servers: float
    simulated_time: float
    num_events: int
    arrivals: int
    departures: int
    wall_seconds: float = float("nan")
    kernel: str = "python"

    @property
    def mean_delay(self) -> float:
        """The paper's "average delay" (mean response/sojourn time)."""
        return self.mean_sojourn_time

    @property
    def events_per_second(self) -> float:
        """Simulated events per wall-clock second (nan if not timed)."""
        if not math.isfinite(self.wall_seconds) or self.wall_seconds <= 0:
            return float("nan")
        return self.num_events / self.wall_seconds


class FleetSimulation:
    """Occupancy-vector Gillespie simulation of a dispatcher fleet.

    Parameters
    ----------
    num_servers : int
        Pool size ``N``.
    d : int
        Number of servers polled per arrival (``1 <= d <= N``).
    utilization : float
        Per-server traffic intensity ``rho = lambda / mu`` (dimensionless,
        not a raw rate); may be changed between :meth:`advance` calls via
        :meth:`set_utilization`, and may exceed 1 for transient overload.
    service_rate : float
        Per-server service rate ``mu`` in jobs per time unit; simulated
        time and all delays are in units of ``1/mu``.
    policy : str
        ``"sqd"`` (power of ``d`` choices over distinct servers, the law of
        :class:`repro.policies.sqd.PowerOfD`), ``"jsq"`` or ``"random"``.
    seed : int or None
        RNG seed; identical seeds give bitwise-identical trajectories.
    initial_state : OccupancyState, optional
        Starting occupancy; defaults to an empty cluster.
    with_replacement : bool
        Poll with replacement instead — the variant whose N -> infinity
        limit is exactly the mean-field ODE.  The two laws differ by
        O(d^2/N) and are indistinguishable at fleet scale.
    kernel : str
        Event kernel driving the hot loop: ``"python"`` (scalar reference),
        ``"uniformized"`` (vectorized numpy chunks, ~3x faster) or
        ``"auto"`` (default; the fastest kernel supporting the policy).
        Requesting a kernel that cannot run the configuration raises
        :class:`~repro.api.spec.SpecError`.
    """

    def __init__(
        self,
        num_servers: int,
        d: int = 2,
        utilization: float = 0.9,
        service_rate: float = 1.0,
        policy: str = "sqd",
        seed: Optional[int] = 12345,
        initial_state: Optional[OccupancyState] = None,
        with_replacement: bool = False,
        kernel: str = "auto",
    ):
        num_servers = check_integer("num_servers", num_servers, minimum=1)
        if policy not in _POLICIES:
            raise ValidationError(f"policy must be one of {_POLICIES}, got {policy!r}")
        if policy == "random":
            d = 1
        self._d = check_integer("d", d, minimum=1, maximum=num_servers)
        check_in_range("utilization", utilization, 0.0, 10.0)
        check_positive("service_rate", service_rate)
        self._policy = policy
        self._service_rate = float(service_rate)
        self._arrival_rate_per_server = float(utilization) * self._service_rate
        self._with_replacement = bool(with_replacement)

        if initial_state is None:
            self._state = OccupancyState.empty(num_servers)
        else:
            if initial_state.num_servers != num_servers:
                raise ValidationError(
                    f"initial_state has {initial_state.num_servers} servers, expected {num_servers}"
                )
            self._state = initial_state.copy()

        self._kernel = resolve_kernel(kernel, self._policy, self._d, self._with_replacement)

        (self._rng,) = spawn_rngs(seed, 1)

        self._now = 0.0
        self._events_total = 0
        self._reset_window()

    # ------------------------------------------------------------------ #
    # Statistics window management
    # ------------------------------------------------------------------ #
    def _reset_window(self) -> None:
        self._stats_start = self._now
        self._weighted_jobs = 0.0
        self._arrivals = 0
        self._departures = 0
        self._window_events = 0
        depth = len(self._state.levels)
        self._level_weight = [0.0] * depth
        self._level_last = [self._now] * depth

    def _flush_levels(self) -> None:
        now = self._now
        levels = self._state.levels
        for j in range(len(self._level_weight)):
            count = levels[j] if j < len(levels) else 0
            self._level_weight[j] += count * (now - self._level_last[j])
            self._level_last[j] = now

    def reset_statistics(self) -> None:
        """Drop everything measured so far; the cluster state is kept."""
        self._reset_window()

    # ------------------------------------------------------------------ #
    # Reconfiguration between advances (scenario support)
    # ------------------------------------------------------------------ #
    def set_utilization(self, utilization: float) -> None:
        """Change the per-server offered load for subsequent events."""
        check_in_range("utilization", utilization, 0.0, 10.0)
        self._arrival_rate_per_server = float(utilization) * self._service_rate

    def set_num_servers(self, num_servers: int) -> int:
        """Resize the pool (idle servers only leave); returns the actual size."""
        check_integer("num_servers", num_servers, minimum=1)
        if self._d > max(num_servers, self._state.busy_servers):
            raise ValidationError(f"cannot shrink below d={self._d} servers")
        self._flush_levels()
        return self._state.resize(num_servers)

    @property
    def now(self) -> float:
        return self._now

    @property
    def state(self) -> OccupancyState:
        return self._state

    @property
    def events_executed(self) -> int:
        return self._events_total

    @property
    def kernel(self) -> str:
        """Name of the resolved event kernel driving the hot loop."""
        return self._kernel.name

    # ------------------------------------------------------------------ #
    # The hot loop (delegated to the pluggable kernel)
    # ------------------------------------------------------------------ #
    def advance(self, max_events: Optional[int] = None, until_time: Optional[float] = None) -> int:
        """Simulate until ``max_events`` fire or the clock reaches ``until_time``.

        Returns the number of events executed.  At least one stop condition
        is required.  Statistics accumulate into the current window.  The
        loop itself runs in the kernel selected at construction
        (:mod:`repro.kernels`); all kernels implement the same law and the
        same statistics contract.
        """
        if max_events is None and until_time is None:
            raise ValidationError("advance() needs max_events and/or until_time")
        if max_events is not None:
            check_integer("max_events", max_events, minimum=0)
        return self._kernel.advance(self, max_events, until_time)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def statistics(self, wall_seconds: float = float("nan")) -> FleetResult:
        """Snapshot the current measurement window as a :class:`FleetResult`."""
        self._flush_levels()
        measured = self._now - self._stats_start
        if measured <= 0:
            raise ValidationError("no simulated time accumulated in this statistics window")
        mean_jobs = self._weighted_jobs / measured
        counts = np.asarray(self._level_weight, dtype=float) / measured
        mean_servers = counts[0] if counts.shape[0] else float(self._state.num_servers)
        effective_lambda = self._arrivals / measured
        if effective_lambda > 0:
            sojourn = mean_jobs / effective_lambda
            waiting = sojourn - 1.0 / self._service_rate
        else:
            sojourn = float("nan")
            waiting = float("nan")
        return FleetResult(
            num_servers=self._state.num_servers,
            d=self._d,
            policy=self._policy,
            utilization=self._arrival_rate_per_server / self._service_rate,
            service_rate=self._service_rate,
            mean_jobs_in_system=float(mean_jobs),
            mean_queue_length=float(mean_jobs / mean_servers) if mean_servers > 0 else float("nan"),
            mean_sojourn_time=float(sojourn),
            mean_waiting_time=float(waiting),
            occupancy_fractions=counts / mean_servers if mean_servers > 0 else counts,
            mean_servers=float(mean_servers),
            simulated_time=float(measured),
            num_events=self._window_events,
            arrivals=self._arrivals,
            departures=self._departures,
            wall_seconds=wall_seconds,
            kernel=self._kernel.name,
        )


def _stationary_start(num_servers: int, d: int, utilization: float, policy: str) -> OccupancyState:
    """Occupancy profile near the stationary regime, for fast warm-up."""
    if utilization >= 1.0 or utilization <= 0.0:
        return OccupancyState.empty(num_servers)
    if policy == "jsq":
        fractions = [1.0, utilization]
    elif policy == "random":
        fractions = meanfield_fixed_point(utilization, 1)
    else:
        fractions = meanfield_fixed_point(utilization, d)
    return OccupancyState.from_fractions(num_servers, fractions)


def simulate_fleet(
    num_servers: int,
    d: int = 2,
    utilization: float = 0.9,
    service_rate: float = 1.0,
    num_events: int = 500_000,
    warmup_fraction: float = 0.1,
    seed: Optional[int] = 12345,
    policy: str = "sqd",
    start: Union[str, OccupancyState] = "stationary",
    with_replacement: bool = False,
    kernel: str = "auto",
) -> FleetResult:
    """Stationary fleet simulation: warm up, measure, return time averages.

    Parameters
    ----------
    num_servers : int
        Pool size ``N`` (the occupancy representation keeps per-event cost
        independent of it, so ``N = 10^6`` is practical).
    d : int
        Number of servers polled per arrival (``1 <= d <= N``).
    utilization : float
        Per-server traffic intensity ``rho = lambda / mu`` (dimensionless,
        strictly below 1 for a stationary run) — *not* the raw arrival
        rate; the cluster-wide arrival rate is ``rho * mu * N``.
    service_rate : float
        Per-server service rate ``mu`` in jobs per time unit.  Reported
        delays are in units of ``1/mu``, so with the default ``mu = 1`` a
        mean sojourn time of 2.3 means "2.3 mean service times".
    num_events : int
        Total simulated events (arrivals + departures), including warm-up.
    warmup_fraction : float
        Fraction of ``num_events`` discarded before measurement starts.
    seed : int or None
        RNG seed; identical seeds give bitwise-identical results.
    policy : str
        ``"sqd"``, ``"jsq"`` or ``"random"``.
    start : str or OccupancyState
        ``"stationary"`` seeds the occupancy at the mean-field fixed point
        so the warm-up only has to absorb O(sqrt(N)) fluctuations instead
        of the O(1/(1 - rho)) fill-up transient; ``"empty"`` reproduces the
        classic cold start; an explicit :class:`OccupancyState` is used
        as-is.
    with_replacement : bool
        Poll with replacement (the mean-field ODE's exact prefactor law)
        instead of distinct servers.
    kernel : str
        Event kernel: ``"python"``, ``"uniformized"`` or ``"auto"``
        (default — the fastest kernel supporting the configuration); see
        :mod:`repro.kernels`.

    Returns
    -------
    FleetResult
        Time-averaged statistics of the measurement window; mean delay is
        recovered via Little's law exactly as in
        :func:`repro.simulation.gillespie.simulate_sqd_ctmc`.  The
        resolved kernel name is recorded in ``FleetResult.kernel``.
    """
    check_in_range("utilization", utilization, 0.0, 1.0)
    if utilization >= 1.0:
        raise ValidationError("utilization must be strictly below 1 for a stationary run")
    num_events = check_integer("num_events", num_events, minimum=1)
    check_in_range("warmup_fraction", warmup_fraction, 0.0, 0.9)

    if isinstance(start, OccupancyState):
        initial = start
    elif start == "stationary":
        initial = _stationary_start(num_servers, d, utilization, policy)
    elif start == "empty":
        initial = None
    else:
        raise ValidationError(f"start must be 'stationary', 'empty' or an OccupancyState, got {start!r}")

    simulation = FleetSimulation(
        num_servers=num_servers,
        d=d,
        utilization=utilization,
        service_rate=service_rate,
        policy=policy,
        seed=seed,
        initial_state=initial,
        with_replacement=with_replacement,
        kernel=kernel,
    )
    warmup_events = int(num_events * warmup_fraction)
    if warmup_events:
        simulation.advance(max_events=warmup_events)
        simulation.reset_statistics()
    started = time.perf_counter()
    simulation.advance(max_events=num_events - warmup_events)
    wall = time.perf_counter() - started
    return simulation.statistics(wall_seconds=wall)


@dataclass(frozen=True)
class ScenarioResult:
    """Per-phase fleet statistics for one scenario playback."""

    scenario: Scenario
    num_servers: int
    phases: Tuple[FleetResult, ...]
    labels: Tuple[str, ...]
    kernel: str = "python"

    @property
    def total_events(self) -> int:
        return sum(phase.num_events for phase in self.phases)

    @property
    def total_time(self) -> float:
        return sum(phase.simulated_time for phase in self.phases)

    @property
    def overall_mean_delay(self) -> float:
        """Arrival-weighted mean delay across all phases (Little's law)."""
        jobs_time = sum(p.mean_jobs_in_system * p.simulated_time for p in self.phases)
        arrivals = sum(p.arrivals for p in self.phases)
        return jobs_time / arrivals if arrivals else float("nan")

    def as_table(self) -> str:
        headers = ["phase", "rho", "N", "jobs/server", "mean delay", "events"]
        rows = []
        for label, phase in zip(self.labels, self.phases):
            rows.append(
                [
                    label,
                    phase.utilization,
                    phase.num_servers,
                    phase.mean_queue_length,
                    phase.mean_sojourn_time,
                    phase.num_events,
                ]
            )
        title = (
            f"scenario '{self.scenario.name}' on N={self.num_servers} base servers: "
            f"{self.scenario.description}"
        )
        return format_table(headers, rows, title=title)


def run_scenario(
    scenario: Scenario,
    num_servers: int,
    d: int = 2,
    service_rate: float = 1.0,
    policy: str = "sqd",
    seed: Optional[int] = 12345,
    with_replacement: bool = False,
    kernel: str = "auto",
) -> ScenarioResult:
    """Play a :class:`Scenario` through the occupancy engine.

    Parameters
    ----------
    scenario : Scenario
        The phase sequence to play back; per-phase durations are in units
        of ``1/mu`` and utilizations are dimensionless ``rho`` values.
    num_servers : int
        Base pool size ``N`` that phase ``server_scale`` factors multiply.
    d : int
        Number of servers polled per arrival.
    service_rate : float
        Per-server service rate ``mu``; delays are in units of ``1/mu``.
    policy : str
        ``"sqd"``, ``"jsq"`` or ``"random"``.
    seed : int or None
        RNG seed; identical seeds give bitwise-identical playbacks.
    with_replacement : bool
        Poll with replacement (see :class:`FleetSimulation`).
    kernel : str
        Event kernel (``"python"``, ``"uniformized"`` or ``"auto"``); see
        :mod:`repro.kernels`.

    Returns
    -------
    ScenarioResult
        Per-phase statistics windows plus arrival-weighted overall delay.

    Notes
    -----
    The cluster state carries across phase boundaries (that is the point:
    transients from one phase bleed into the next); statistics are windowed
    per phase.  The warm-up runs at the first phase's settings from a
    near-stationary start and is discarded.

    Zero-duration phases apply their reconfiguration (load change, pool
    resize) instantaneously but contribute no statistics window — they are
    excluded from :attr:`ScenarioResult.phases`, since a zero-length
    time-average is undefined.
    """
    first = scenario.phases[0]
    base_servers = check_integer("num_servers", num_servers, minimum=1)
    initial_n = max(1, int(round(base_servers * first.server_scale)))
    simulation = FleetSimulation(
        num_servers=initial_n,
        d=d,
        utilization=first.utilization,
        service_rate=service_rate,
        policy=policy,
        seed=seed,
        initial_state=_stationary_start(initial_n, d, first.utilization, policy),
        with_replacement=with_replacement,
        kernel=kernel,
    )
    if scenario.warmup_time > 0:
        simulation.advance(until_time=simulation.now + scenario.warmup_time)
    results: List[FleetResult] = []
    labels: List[str] = []
    for index, phase in enumerate(scenario.phases):
        simulation.set_utilization(phase.utilization)
        simulation.set_num_servers(max(1, int(round(base_servers * phase.server_scale))))
        if phase.duration <= 0:
            continue
        simulation.reset_statistics()
        simulation.advance(until_time=simulation.now + phase.duration)
        results.append(simulation.statistics())
        labels.append(phase.label or f"phase {index + 1}")
    return ScenarioResult(
        scenario=scenario,
        num_servers=base_servers,
        phases=tuple(results),
        labels=tuple(labels),
        kernel=simulation.kernel,
    )
