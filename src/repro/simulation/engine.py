"""A minimal discrete-event simulation engine.

The engine is a priority queue of timestamped events with callbacks.  It is
deliberately small: deterministic tie-breaking by insertion order, explicit
cancellation, and stop conditions by time or event count.  The cluster
simulator in :mod:`repro.simulation.cluster` is its only in-tree client, but
the engine is generic and reusable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

# Heap entries are plain ``(time, sequence, event)`` tuples: the heap sifts
# compare time-then-sequence at C speed (the sequence both breaks ties by
# insertion order and keeps the never-compared Event out of comparisons),
# which is measurably faster than a dataclass-generated __lt__ in the
# million-comparison event loops of the cluster simulator.


class Event:
    """A scheduled callback; use :meth:`cancel` to revoke it before it fires."""

    __slots__ = ("callback", "cancelled", "time")

    def __init__(self, time: float, callback: Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class EventScheduler:
    """Future-event list with a simulation clock."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._executed_events = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of (non-cancelled) events executed so far."""
        return self._executed_events

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled (including cancelled ones not yet purged)."""
        return len(self._heap)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        event = Event(self._now + delay, callback)
        heapq.heappush(self._heap, (event.time, next(self._counter), event))
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self._now, callback)

    def step(self) -> bool:
        """Execute the next pending event; return False when none remain."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = time
            event.callback()
            self._executed_events += 1
            return True
        return False

    def run(self, until_time: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the event list empties, ``until_time`` passes, or ``max_events`` fire.

        When ``until_time`` is given the clock always ends at ``until_time``
        (unless ``max_events`` stops the run first), even if the event list
        drains beforehand — callers can rely on ``now`` to resume from the
        requested horizon.
        """
        executed_at_start = self._executed_events
        while self._heap:
            if max_events is not None and self._executed_events - executed_at_start >= max_events:
                return
            next_time = self._peek_time()
            if next_time is None:
                break
            if until_time is not None and next_time > until_time:
                self._now = until_time
                return
            self.step()
        if until_time is not None and self._now < until_time:
            self._now = until_time

    def _peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0][0]
