"""Discrete-event and CTMC simulation substrate.

Two simulators are provided, both exercising the same dispatching policies:

* :class:`ClusterSimulation` — a job-level discrete-event simulation built on
  the generic :class:`EventScheduler`; it tracks every job individually,
  supports arbitrary arrival processes and service distributions, and records
  per-job waiting and sojourn times.
* :func:`simulate_sqd_ctmc` — a fast Gillespie-style simulation of the
  queue-length CTMC for exponential models; mean delay is recovered through
  Little's law from the time-averaged number of jobs.  This is the workhorse
  behind the Figure 9 sweep (which the paper runs with 10^8 jobs).
"""

from repro.simulation.engine import Event, EventScheduler
from repro.simulation.metrics import (
    SimulationSummary,
    WaitingTimeAccumulator,
    batch_means_confidence_interval,
    TimeAverageAccumulator,
)
from repro.simulation.cluster import ClusterSimulation, ClusterResult
from repro.simulation.gillespie import CTMCSimulationResult, simulate_sqd_ctmc
from repro.simulation.workloads import Workload, poisson_exponential_workload

__all__ = [
    "Event",
    "EventScheduler",
    "SimulationSummary",
    "WaitingTimeAccumulator",
    "TimeAverageAccumulator",
    "batch_means_confidence_interval",
    "ClusterSimulation",
    "ClusterResult",
    "CTMCSimulationResult",
    "simulate_sqd_ctmc",
    "Workload",
    "poisson_exponential_workload",
]
