"""Fast CTMC (Gillespie) simulation of SQ(d)-type clusters with Little's law.

For the paper's base model (Poisson arrivals, exponential service) the
per-server queue-length vector is itself a CTMC, so a much cheaper simulation
is possible than tracking individual jobs: jump from event to event, keep the
time-averaged number of jobs in the system, and convert to the mean sojourn
time ("average delay") with Little's law ``E[T] = E[L] / (lambda N)``.

This is what makes the Figure 9 sweep (N up to 250, d up to 50, two
utilizations) affordable in pure Python; the paper's own simulations use
10^8 jobs per point, which the harness can match by raising ``num_events``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.policies.base import ClusterView, DispatchingPolicy
from repro.policies.sqd import PowerOfD
from repro.utils.seeding import spawn_rngs
from repro.utils.validation import check_in_range, check_integer, check_positive


@dataclass(frozen=True)
class CTMCSimulationResult:
    """Output of a queue-length CTMC simulation."""

    mean_jobs_in_system: float
    mean_sojourn_time: float
    mean_waiting_time: float
    mean_queue_imbalance: float
    simulated_time: float
    num_events: int
    utilization: float
    num_servers: int

    @property
    def mean_delay(self) -> float:
        """The paper's "average delay" (mean response/sojourn time)."""
        return self.mean_sojourn_time


def simulate_sqd_ctmc(
    num_servers: int,
    d: int,
    utilization: float,
    service_rate: float = 1.0,
    num_events: int = 200_000,
    warmup_fraction: float = 0.1,
    seed: Optional[int] = 12345,
    policy: Optional[DispatchingPolicy] = None,
) -> CTMCSimulationResult:
    """Simulate the queue-length CTMC of an SQ(d) cluster.

    Parameters
    ----------
    num_servers, d:
        Cluster size and number of random choices per arrival.  ``policy``
        overrides the default :class:`PowerOfD` policy if supplied (it must
        only rely on queue lengths, not remaining work).
    utilization:
        Per-server traffic intensity ``rho = lambda / mu`` (must be < 1).
    num_events:
        Total number of CTMC transitions (arrivals + departures) to simulate.
    warmup_fraction:
        Fraction of the events discarded as warm-up before statistics start.
    """
    num_servers = check_integer("num_servers", num_servers, minimum=1)
    d = check_integer("d", d, minimum=1, maximum=num_servers)
    check_positive("service_rate", service_rate)
    check_in_range("utilization", utilization, 0.0, 1.0)
    if utilization >= 1.0:
        raise ValueError("utilization must be strictly below 1 for a stable system")
    num_events = check_integer("num_events", num_events, minimum=1)
    check_in_range("warmup_fraction", warmup_fraction, 0.0, 0.9)

    rng, policy_rng = spawn_rngs(seed, 2)
    dispatcher = policy if policy is not None else PowerOfD(d)
    dispatcher.reset()

    arrival_rate = utilization * service_rate * num_servers
    queue_lengths = np.zeros(num_servers, dtype=np.int64)
    view = ClusterView(queue_lengths=queue_lengths, work_remaining=None)

    warmup_events = int(num_events * warmup_fraction)
    clock = 0.0
    stats_start_time = 0.0
    weighted_jobs = 0.0
    weighted_imbalance = 0.0
    busy_servers = 0
    total_jobs = 0
    arrivals_recorded = 0

    # Pre-draw uniforms in blocks; exponential holding times are derived from
    # them so the hot loop avoids per-event Generator calls.
    block_size = 16384
    uniform_block = rng.random(block_size)
    uniform_index = 0

    def next_uniform() -> float:
        nonlocal uniform_block, uniform_index
        if uniform_index >= block_size:
            uniform_block = rng.random(block_size)
            uniform_index = 0
        value = uniform_block[uniform_index]
        uniform_index += 1
        return float(value)

    for event_index in range(num_events):
        total_rate = arrival_rate + service_rate * busy_servers
        holding_time = -math.log(1.0 - next_uniform()) / total_rate

        if event_index >= warmup_events:
            weighted_jobs += holding_time * total_jobs
            weighted_imbalance += holding_time * (queue_lengths.max() - queue_lengths.min() if num_servers > 1 else 0)
        elif event_index == warmup_events - 1:
            stats_start_time = clock + holding_time
        clock += holding_time

        if next_uniform() * total_rate < arrival_rate:
            # Arrival: the dispatcher picks a server according to the policy.
            server = dispatcher.select_server(view, policy_rng)
            if queue_lengths[server] == 0:
                busy_servers += 1
            queue_lengths[server] += 1
            total_jobs += 1
            arrivals_recorded += 1
        else:
            # Departure: a uniformly random busy server completes a job.
            # Rejection sampling over all servers is fast at the utilizations
            # of interest; fall back to an explicit scan if it stalls.
            server = -1
            for _ in range(64):
                candidate = int(next_uniform() * num_servers)
                if queue_lengths[candidate] > 0:
                    server = candidate
                    break
            if server < 0:
                busy_indices = np.flatnonzero(queue_lengths > 0)
                server = int(busy_indices[int(next_uniform() * busy_indices.shape[0])])
            queue_lengths[server] -= 1
            total_jobs -= 1
            if queue_lengths[server] == 0:
                busy_servers -= 1

    measured_time = clock - stats_start_time
    if measured_time <= 0:
        raise RuntimeError("simulation too short: no post-warm-up time accumulated")
    mean_jobs = weighted_jobs / measured_time
    mean_imbalance = weighted_imbalance / measured_time
    mean_sojourn = mean_jobs / arrival_rate
    mean_waiting = mean_sojourn - 1.0 / service_rate

    return CTMCSimulationResult(
        mean_jobs_in_system=float(mean_jobs),
        mean_sojourn_time=float(mean_sojourn),
        mean_waiting_time=float(mean_waiting),
        mean_queue_imbalance=float(mean_imbalance),
        simulated_time=float(measured_time),
        num_events=num_events,
        utilization=float(utilization),
        num_servers=num_servers,
    )
