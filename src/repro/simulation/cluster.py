"""Job-level discrete-event simulation of a dispatcher + N FIFO servers.

Every job is tracked individually: arrival time, chosen server, service
requirement, waiting time (time from arrival until service starts) and
sojourn time (waiting plus service, the paper's "delay").  The simulator is
policy- and distribution-agnostic; the fast exponential-only CTMC simulator
lives in :mod:`repro.simulation.gillespie`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from repro.policies.base import ClusterView, DispatchingPolicy
from repro.simulation.engine import EventScheduler
from repro.simulation.metrics import SimulationSummary, WaitingTimeAccumulator
from repro.simulation.workloads import Workload
from repro.utils.seeding import spawn_rngs
from repro.utils.validation import check_integer


@dataclass
class _Job:
    arrival_time: float
    service_requirement: float
    server: int = -1
    start_time: float = -1.0
    completion_time: float = -1.0


@dataclass(frozen=True)
class ClusterResult:
    """Aggregated output of one simulation run."""

    mean_waiting_time: float
    mean_sojourn_time: float
    waiting_summary: SimulationSummary
    sojourn_summary: SimulationSummary
    completed_jobs: int
    discarded_jobs: int
    simulated_time: float
    mean_queue_length_seen: float

    @property
    def mean_delay(self) -> float:
        """The paper's "average delay" is the mean sojourn (response) time."""
        return self.mean_sojourn_time


class ClusterSimulation:
    """Event-driven simulation of a single dispatcher feeding N FIFO servers.

    Parameters
    ----------
    workload:
        Arrival process and service distribution (see :class:`Workload`).
    policy:
        Dispatching policy deciding which server each arriving job joins.
    seed:
        Seed for the independent arrival / service / policy random streams.
    warmup_jobs:
        Number of initial job completions to discard from the statistics.
    """

    def __init__(
        self,
        workload: Workload,
        policy: DispatchingPolicy,
        seed: Optional[int] = 12345,
        warmup_jobs: int = 0,
    ):
        self._workload = workload
        self._policy = policy
        self._arrival_rng, self._service_rng, self._policy_rng = spawn_rngs(seed, 3)
        self._scheduler = EventScheduler()
        self._accumulator = WaitingTimeAccumulator(warmup_jobs=warmup_jobs)

        n = workload.num_servers
        self._num_servers = n
        self._queues: List[Deque[_Job]] = [deque() for _ in range(n)]
        self._queue_lengths = np.zeros(n, dtype=np.int64)
        self._work_remaining = np.zeros(n, dtype=float)
        self._arrivals_generated = 0
        self._jobs_completed = 0
        self._queue_length_seen_sum = 0.0
        self._max_jobs: Optional[int] = None
        self._has_run = False

        # Bound methods the event loop calls once or more per job; resolving
        # them here keeps repeated attribute chains out of the handlers.
        self._schedule = self._scheduler.schedule
        self._record = self._accumulator.record
        self._select_server = policy.select_server
        self._sample_interarrivals = workload.arrival_process.sample_interarrival_times
        self._sample_services = workload.service_distribution.sample

        # Pre-draw interarrival and service times in blocks to avoid per-event
        # generator call overhead.  Each freshly drawn block is converted to a
        # plain list once (one C-level pass), then consumed in place across
        # run()/handler calls — per-job cost is a list index instead of a
        # numpy scalar extraction plus a float() round-trip.
        self._interarrival_buffer: List[float] = []
        self._interarrival_index = 0
        self._service_buffer: List[float] = []
        self._service_index = 0

    # ------------------------------------------------------------------ #
    # Random-variate buffering
    # ------------------------------------------------------------------ #
    def _next_interarrival(self) -> float:
        index = self._interarrival_index
        if index >= len(self._interarrival_buffer):
            self._interarrival_buffer = self._sample_interarrivals(
                self._arrival_rng, 8192
            ).tolist()
            index = 0
        self._interarrival_index = index + 1
        return self._interarrival_buffer[index]

    def _next_service(self) -> float:
        index = self._service_index
        if index >= len(self._service_buffer):
            self._service_buffer = self._sample_services(self._service_rng, 8192).tolist()
            index = 0
        self._service_index = index + 1
        return self._service_buffer[index]

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _handle_arrival(self) -> None:
        queue_lengths = self._queue_lengths
        job = _Job(arrival_time=self._scheduler.now, service_requirement=self._next_service())
        view = ClusterView(queue_lengths=queue_lengths, work_remaining=self._work_remaining)
        server = self._select_server(view, self._policy_rng)
        if not 0 <= server < self._num_servers:
            raise RuntimeError(f"policy selected an invalid server index {server}")
        job.server = server
        self._queue_length_seen_sum += float(queue_lengths[server])

        self._queues[server].append(job)
        queue_lengths[server] += 1
        self._work_remaining[server] += job.service_requirement
        if queue_lengths[server] == 1:
            self._start_service(server)

        self._arrivals_generated += 1
        if self._max_jobs is None or self._arrivals_generated < self._max_jobs:
            self._schedule(self._next_interarrival(), self._handle_arrival)

    def _start_service(self, server: int) -> None:
        job = self._queues[server][0]
        job.start_time = self._scheduler.now
        self._schedule(job.service_requirement, lambda: self._handle_departure(server))

    def _handle_departure(self, server: int) -> None:
        queue = self._queues[server]
        job = queue.popleft()
        job.completion_time = self._scheduler.now
        self._queue_lengths[server] -= 1
        self._work_remaining[server] = max(0.0, self._work_remaining[server] - job.service_requirement)
        self._jobs_completed += 1

        arrival_time = job.arrival_time
        self._record(job.start_time - arrival_time, job.completion_time - arrival_time)

        if queue:
            self._start_service(server)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, num_jobs: int) -> ClusterResult:
        """Simulate until ``num_jobs`` jobs have *arrived* and all of them completed.

        A simulation instance is single-shot: queues, clocks and accumulated
        statistics are not reset between runs, so calling :meth:`run` twice
        would silently mix the statistics of both runs.
        """
        check_integer("num_jobs", num_jobs, minimum=1)
        if self._has_run:
            raise RuntimeError(
                "ClusterSimulation.run() may only be called once per instance: state and "
                "statistics are not reset. Construct a fresh ClusterSimulation to re-run."
            )
        self._has_run = True
        self._max_jobs = num_jobs
        self._policy.reset()
        self._scheduler.schedule(self._next_interarrival(), self._handle_arrival)
        # Run until the event list drains: after the last arrival is generated
        # only departures remain, so the simulation terminates.
        self._scheduler.run()
        return self._build_result()

    def _build_result(self) -> ClusterResult:
        waiting_summary = self._accumulator.waiting_summary()
        sojourn_summary = self._accumulator.sojourn_summary()
        completed = self._accumulator.recorded_jobs
        mean_seen = self._queue_length_seen_sum / max(1, self._arrivals_generated)
        return ClusterResult(
            mean_waiting_time=self._accumulator.mean_waiting_time(),
            mean_sojourn_time=self._accumulator.mean_sojourn_time(),
            waiting_summary=waiting_summary,
            sojourn_summary=sojourn_summary,
            completed_jobs=completed,
            discarded_jobs=self._accumulator.discarded_jobs,
            simulated_time=self._scheduler.now,
            mean_queue_length_seen=float(mean_seen),
        )

    @property
    def queue_lengths(self) -> np.ndarray:
        """Current per-server queue lengths (useful for tests and debugging)."""
        return self._queue_lengths.copy()

    @property
    def jobs_completed(self) -> int:
        return self._jobs_completed
