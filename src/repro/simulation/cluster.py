"""Job-level discrete-event simulation of a dispatcher + N FIFO servers.

Every job is tracked individually: arrival time, chosen server, service
requirement, waiting time (time from arrival until service starts) and
sojourn time (waiting plus service, the paper's "delay").  The simulator is
policy- and distribution-agnostic; the fast exponential-only CTMC simulator
lives in :mod:`repro.simulation.gillespie`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from repro.policies.base import ClusterView, DispatchingPolicy
from repro.simulation.engine import EventScheduler
from repro.simulation.metrics import SimulationSummary, WaitingTimeAccumulator
from repro.simulation.workloads import Workload
from repro.utils.seeding import spawn_rngs
from repro.utils.validation import check_integer


@dataclass
class _Job:
    arrival_time: float
    service_requirement: float
    server: int = -1
    start_time: float = -1.0
    completion_time: float = -1.0


@dataclass(frozen=True)
class ClusterResult:
    """Aggregated output of one simulation run."""

    mean_waiting_time: float
    mean_sojourn_time: float
    waiting_summary: SimulationSummary
    sojourn_summary: SimulationSummary
    completed_jobs: int
    discarded_jobs: int
    simulated_time: float
    mean_queue_length_seen: float

    @property
    def mean_delay(self) -> float:
        """The paper's "average delay" is the mean sojourn (response) time."""
        return self.mean_sojourn_time


class ClusterSimulation:
    """Event-driven simulation of a single dispatcher feeding N FIFO servers.

    Parameters
    ----------
    workload:
        Arrival process and service distribution (see :class:`Workload`).
    policy:
        Dispatching policy deciding which server each arriving job joins.
    seed:
        Seed for the independent arrival / service / policy random streams.
    warmup_jobs:
        Number of initial job completions to discard from the statistics.
    """

    def __init__(
        self,
        workload: Workload,
        policy: DispatchingPolicy,
        seed: Optional[int] = 12345,
        warmup_jobs: int = 0,
    ):
        self._workload = workload
        self._policy = policy
        self._arrival_rng, self._service_rng, self._policy_rng = spawn_rngs(seed, 3)
        self._scheduler = EventScheduler()
        self._accumulator = WaitingTimeAccumulator(warmup_jobs=warmup_jobs)

        n = workload.num_servers
        self._queues: List[Deque[_Job]] = [deque() for _ in range(n)]
        self._queue_lengths = np.zeros(n, dtype=np.int64)
        self._work_remaining = np.zeros(n, dtype=float)
        self._arrivals_generated = 0
        self._jobs_completed = 0
        self._queue_length_seen_sum = 0.0
        self._max_jobs: Optional[int] = None
        self._has_run = False

        # Pre-draw interarrival and service times in blocks to avoid per-event
        # generator call overhead.
        self._interarrival_buffer = np.empty(0)
        self._interarrival_index = 0
        self._service_buffer = np.empty(0)
        self._service_index = 0

    # ------------------------------------------------------------------ #
    # Random-variate buffering
    # ------------------------------------------------------------------ #
    def _next_interarrival(self) -> float:
        if self._interarrival_index >= self._interarrival_buffer.shape[0]:
            self._interarrival_buffer = self._workload.arrival_process.sample_interarrival_times(
                self._arrival_rng, 8192
            )
            self._interarrival_index = 0
        value = self._interarrival_buffer[self._interarrival_index]
        self._interarrival_index += 1
        return float(value)

    def _next_service(self) -> float:
        if self._service_index >= self._service_buffer.shape[0]:
            self._service_buffer = self._workload.service_distribution.sample(self._service_rng, 8192)
            self._service_index = 0
        value = self._service_buffer[self._service_index]
        self._service_index += 1
        return float(value)

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _handle_arrival(self) -> None:
        now = self._scheduler.now
        job = _Job(arrival_time=now, service_requirement=self._next_service())
        view = ClusterView(queue_lengths=self._queue_lengths, work_remaining=self._work_remaining)
        server = self._policy.select_server(view, self._policy_rng)
        if not 0 <= server < self._workload.num_servers:
            raise RuntimeError(f"policy selected an invalid server index {server}")
        job.server = server
        self._queue_length_seen_sum += float(self._queue_lengths[server])

        self._queues[server].append(job)
        self._queue_lengths[server] += 1
        self._work_remaining[server] += job.service_requirement
        if self._queue_lengths[server] == 1:
            self._start_service(server)

        self._arrivals_generated += 1
        if self._max_jobs is None or self._arrivals_generated < self._max_jobs:
            self._scheduler.schedule(self._next_interarrival(), self._handle_arrival)

    def _start_service(self, server: int) -> None:
        job = self._queues[server][0]
        job.start_time = self._scheduler.now
        self._scheduler.schedule(job.service_requirement, lambda: self._handle_departure(server))

    def _handle_departure(self, server: int) -> None:
        now = self._scheduler.now
        job = self._queues[server].popleft()
        job.completion_time = now
        self._queue_lengths[server] -= 1
        self._work_remaining[server] = max(0.0, self._work_remaining[server] - job.service_requirement)
        self._jobs_completed += 1

        waiting_time = job.start_time - job.arrival_time
        sojourn_time = job.completion_time - job.arrival_time
        self._accumulator.record(waiting_time, sojourn_time)

        if self._queues[server]:
            self._start_service(server)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, num_jobs: int) -> ClusterResult:
        """Simulate until ``num_jobs`` jobs have *arrived* and all of them completed.

        A simulation instance is single-shot: queues, clocks and accumulated
        statistics are not reset between runs, so calling :meth:`run` twice
        would silently mix the statistics of both runs.
        """
        check_integer("num_jobs", num_jobs, minimum=1)
        if self._has_run:
            raise RuntimeError(
                "ClusterSimulation.run() may only be called once per instance: state and "
                "statistics are not reset. Construct a fresh ClusterSimulation to re-run."
            )
        self._has_run = True
        self._max_jobs = num_jobs
        self._policy.reset()
        self._scheduler.schedule(self._next_interarrival(), self._handle_arrival)
        # Run until the event list drains: after the last arrival is generated
        # only departures remain, so the simulation terminates.
        self._scheduler.run()
        return self._build_result()

    def _build_result(self) -> ClusterResult:
        waiting_summary = self._accumulator.waiting_summary()
        sojourn_summary = self._accumulator.sojourn_summary()
        completed = self._accumulator.recorded_jobs
        mean_seen = self._queue_length_seen_sum / max(1, self._arrivals_generated)
        return ClusterResult(
            mean_waiting_time=self._accumulator.mean_waiting_time(),
            mean_sojourn_time=self._accumulator.mean_sojourn_time(),
            waiting_summary=waiting_summary,
            sojourn_summary=sojourn_summary,
            completed_jobs=completed,
            discarded_jobs=self._accumulator.discarded_jobs,
            simulated_time=self._scheduler.now,
            mean_queue_length_seen=float(mean_seen),
        )

    @property
    def queue_lengths(self) -> np.ndarray:
        """Current per-server queue lengths (useful for tests and debugging)."""
        return self._queue_lengths.copy()

    @property
    def jobs_completed(self) -> int:
        return self._jobs_completed
