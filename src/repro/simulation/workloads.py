"""Workload descriptions: arrival process + service distribution + load bookkeeping.

A :class:`Workload` bundles everything the simulators need about the traffic
offered to an ``N``-server cluster.  The canonical workload of the paper is
Poisson arrivals with total rate ``lambda * N`` and exponential unit-mean
service, constructed by :func:`poisson_exponential_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.markov.arrival_processes import ArrivalProcess, PoissonArrivals
from repro.markov.service_distributions import ExponentialService, ServiceDistribution
from repro.utils.validation import ValidationError, check_integer, check_positive


@dataclass(frozen=True)
class Workload:
    """Traffic offered to a cluster of ``num_servers`` parallel servers."""

    num_servers: int
    arrival_process: ArrivalProcess
    service_distribution: ServiceDistribution

    def __post_init__(self) -> None:
        check_integer("num_servers", self.num_servers, minimum=1)
        if self.arrival_process.rate <= 0:
            raise ValidationError("arrival process must have positive rate")
        if self.service_distribution.mean <= 0:
            raise ValidationError("service distribution must have positive mean")

    @property
    def total_arrival_rate(self) -> float:
        """Aggregate arrival rate into the dispatcher."""
        return self.arrival_process.rate

    @property
    def per_server_load(self) -> float:
        """Utilization ``rho`` = offered work per server per unit time."""
        return self.total_arrival_rate * self.service_distribution.mean / self.num_servers

    @property
    def is_stable(self) -> bool:
        """True when ``rho < 1`` (necessary for any work-conserving policy)."""
        return self.per_server_load < 1.0


def poisson_exponential_workload(num_servers: int, utilization: float, service_rate: float = 1.0) -> Workload:
    """The paper's base workload: Poisson(lambda * N) arrivals, Exp(mu) service.

    ``utilization`` is the per-server traffic intensity ``rho = lambda / mu``.
    """
    check_integer("num_servers", num_servers, minimum=1)
    check_positive("utilization", utilization)
    check_positive("service_rate", service_rate)
    total_rate = utilization * service_rate * num_servers
    return Workload(
        num_servers=num_servers,
        arrival_process=PoissonArrivals(total_rate),
        service_distribution=ExponentialService(service_rate),
    )
