"""Output analysis for simulations: accumulators, warm-up handling and CIs."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np
from scipy import stats


@dataclass(frozen=True)
class SimulationSummary:
    """Point estimate with a confidence interval and sample-size bookkeeping."""

    mean: float
    half_width: float
    num_samples: int
    confidence_level: float = 0.95

    @property
    def interval(self) -> Tuple[float, float]:
        return (self.mean - self.half_width, self.mean + self.half_width)

    def contains(self, value: float) -> bool:
        low, high = self.interval
        return low <= value <= high

    @property
    def relative_half_width(self) -> float:
        if self.mean == 0:
            return math.inf
        return self.half_width / abs(self.mean)


def batch_means_confidence_interval(
    samples: Sequence[float],
    num_batches: int = 20,
    confidence_level: float = 0.95,
) -> SimulationSummary:
    """Batch-means confidence interval for the mean of a correlated sample path.

    Per-job waiting times from a queueing simulation are autocorrelated, so a
    naive i.i.d. CI is too narrow; splitting the (post-warm-up) path into
    ``num_batches`` contiguous batches and treating the batch means as
    approximately independent is the standard remedy.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if num_batches < 2:
        raise ValueError("need at least two batches")
    if samples.size < num_batches:
        num_batches = max(2, samples.size // 2) if samples.size >= 4 else 2
    batch_size = samples.size // num_batches
    usable = batch_size * num_batches
    batches = samples[:usable].reshape(num_batches, batch_size)
    batch_means = batches.mean(axis=1)
    grand_mean = float(batch_means.mean())
    if num_batches > 1 and batch_means.std(ddof=1) > 0:
        t_quantile = stats.t.ppf(0.5 + confidence_level / 2.0, df=num_batches - 1)
        half_width = float(t_quantile * batch_means.std(ddof=1) / math.sqrt(num_batches))
    else:
        half_width = 0.0
    return SimulationSummary(
        mean=grand_mean,
        half_width=half_width,
        num_samples=int(samples.size),
        confidence_level=confidence_level,
    )


class WaitingTimeAccumulator:
    """Collects per-job metrics with an optional warm-up discard.

    The first ``warmup_jobs`` completed jobs are discarded, mirroring the
    paper's simulation methodology (10^8 jobs simulated, first 10^7
    discarded).
    """

    def __init__(self, warmup_jobs: int = 0):
        if warmup_jobs < 0:
            raise ValueError("warmup_jobs must be non-negative")
        self._warmup_jobs = warmup_jobs
        self._seen = 0
        self._waiting_times: List[float] = []
        self._sojourn_times: List[float] = []

    @property
    def recorded_jobs(self) -> int:
        return len(self._sojourn_times)

    @property
    def discarded_jobs(self) -> int:
        return min(self._seen, self._warmup_jobs)

    def record(self, waiting_time: float, sojourn_time: float) -> None:
        self._seen += 1
        if self._seen <= self._warmup_jobs:
            return
        self._waiting_times.append(waiting_time)
        self._sojourn_times.append(sojourn_time)

    def waiting_times(self) -> np.ndarray:
        return np.asarray(self._waiting_times, dtype=float)

    def sojourn_times(self) -> np.ndarray:
        return np.asarray(self._sojourn_times, dtype=float)

    def mean_waiting_time(self) -> float:
        return float(np.mean(self._waiting_times)) if self._waiting_times else math.nan

    def mean_sojourn_time(self) -> float:
        return float(np.mean(self._sojourn_times)) if self._sojourn_times else math.nan

    def sojourn_summary(self, confidence_level: float = 0.95) -> SimulationSummary:
        return batch_means_confidence_interval(self._sojourn_times, confidence_level=confidence_level)

    def waiting_summary(self, confidence_level: float = 0.95) -> SimulationSummary:
        return batch_means_confidence_interval(self._waiting_times, confidence_level=confidence_level)


class TimeAverageAccumulator:
    """Time-weighted average of a piecewise-constant sample path.

    Used by the CTMC simulator to average the number of jobs in the system,
    from which the mean sojourn time follows by Little's law.
    """

    def __init__(self) -> None:
        self._weighted_sum = 0.0
        self._total_time = 0.0
        self._last_value: float | None = None
        self._last_time: float | None = None

    def observe(self, time: float, value: float) -> None:
        """Record that the path takes ``value`` from ``time`` onward."""
        if self._last_time is not None:
            if time < self._last_time:
                raise ValueError("observations must be time-ordered")
            duration = time - self._last_time
            self._weighted_sum += duration * float(self._last_value)
            self._total_time += duration
        self._last_time = time
        self._last_value = float(value)

    @property
    def total_time(self) -> float:
        return self._total_time

    def average(self) -> float:
        if self._total_time <= 0:
            return math.nan
        return self._weighted_sum / self._total_time

    def reset(self, time: float, value: float) -> None:
        """Forget accumulated history (warm-up cut) but keep the current value."""
        self._weighted_sum = 0.0
        self._total_time = 0.0
        self._last_time = time
        self._last_value = float(value)
