"""Stationary-distribution and left-nullspace solvers for finite Markov chains.

Both CTMC generators and DTMC transition matrices are supported.  The solvers
work with dense NumPy arrays; the state spaces handled by the SQ(d) bound
models are at most a few thousand states, for which dense LU factorization is
both simpler and faster than sparse iterative methods.
"""

from __future__ import annotations

import numpy as np


class StationarySolveError(RuntimeError):
    """Raised when a stationary distribution cannot be computed."""


def solve_left_nullspace(matrix: np.ndarray) -> np.ndarray:
    """Return a non-trivial row vector ``x`` with ``x @ matrix ≈ 0``.

    The matrix is expected to have a one-dimensional left null space (the
    usual situation for an irreducible generator or ``P - I``).  The vector is
    returned unnormalized; callers apply their own normalization because QBD
    boundary systems normalize with a weighted sum rather than a plain sum.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("matrix must be square")
    # Left null vector of M == right null vector of M^T.
    _, singular_values, vh = np.linalg.svd(matrix.T)
    null_vector = vh[-1, :]
    residual = np.linalg.norm(null_vector @ matrix)
    scale = max(1.0, np.linalg.norm(matrix))
    if residual > 1e-8 * scale:
        raise StationarySolveError(
            f"left null-space residual too large: {residual:.3e} (smallest singular value {singular_values[-1]:.3e})"
        )
    return null_vector


def solve_constrained_left_nullspace(matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Solve ``x @ matrix = 0`` subject to ``x @ weights = 1``.

    This is the canonical way of solving QBD boundary balance equations: the
    balance system is rank deficient by one, and the missing equation is the
    normalization condition with non-uniform ``weights`` (for QBDs the weight
    of the last repeating block is ``(I - R)^{-1} e``).

    The implementation replaces the last column of ``matrix`` by ``weights``
    and solves the resulting non-singular system; if that system is still
    singular (which can happen if the dropped balance equation was not
    redundant), it falls back to a least-squares solve of the stacked system.
    """
    matrix = np.asarray(matrix, dtype=float)
    weights = np.asarray(weights, dtype=float).reshape(-1)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError("matrix must be square")
    if weights.shape != (n,):
        raise ValueError("weights must have one entry per state")

    # Replace one balance equation (the last column of the balance system) by
    # the normalization condition; the resulting square system is regular for
    # irreducible chains.
    augmented = matrix.copy()
    augmented[:, -1] = weights
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    solution = None
    try:
        solution = np.linalg.solve(augmented.T, rhs)
    except np.linalg.LinAlgError:
        solution = None
    if solution is not None and _balance_residual(solution, matrix, weights) < 1e-7:
        return solution

    # Fall back: stack all balance equations plus the normalization and solve
    # in the least-squares sense (handles the rare case where the dropped
    # balance equation was not redundant).
    stacked = np.hstack([matrix, weights.reshape(-1, 1)])
    target = np.zeros(n + 1)
    target[-1] = 1.0
    solution, *_ = np.linalg.lstsq(stacked.T, target, rcond=None)
    if _balance_residual(solution, matrix, weights) > 1e-6:
        raise StationarySolveError("constrained null-space solve failed to converge")
    return solution


def _balance_residual(solution: np.ndarray, matrix: np.ndarray, weights: np.ndarray) -> float:
    balance = solution @ matrix
    # The last balance equation was sacrificed for normalization; exclude it.
    balance_residual = np.linalg.norm(balance[:-1])
    normalization_residual = abs(solution @ weights - 1.0)
    return float(balance_residual + normalization_residual)


def stationary_from_generator(generator: np.ndarray) -> np.ndarray:
    """Stationary distribution ``pi`` of an irreducible CTMC generator.

    Solves ``pi @ Q = 0`` with ``pi @ 1 = 1`` and clips tiny negative entries
    produced by round-off.
    """
    generator = np.asarray(generator, dtype=float)
    n = generator.shape[0]
    _check_generator(generator)
    weights = np.ones(n)
    pi = solve_constrained_left_nullspace(generator, weights)
    return _clean_distribution(pi)


def stationary_from_transition_matrix(transition_matrix: np.ndarray) -> np.ndarray:
    """Stationary distribution of an irreducible DTMC transition matrix."""
    transition_matrix = np.asarray(transition_matrix, dtype=float)
    n = transition_matrix.shape[0]
    if transition_matrix.shape != (n, n):
        raise ValueError("transition matrix must be square")
    row_sums = transition_matrix.sum(axis=1)
    if not np.allclose(row_sums, 1.0, atol=1e-8):
        raise ValueError("transition matrix rows must sum to 1")
    if np.any(transition_matrix < -1e-12):
        raise ValueError("transition matrix must be non-negative")
    pi = solve_constrained_left_nullspace(transition_matrix - np.eye(n), np.ones(n))
    return _clean_distribution(pi)


def _check_generator(generator: np.ndarray) -> None:
    n = generator.shape[0]
    if generator.shape != (n, n):
        raise ValueError("generator must be square")
    off_diagonal = generator - np.diag(np.diag(generator))
    if np.any(off_diagonal < -1e-9):
        raise ValueError("generator off-diagonal entries must be non-negative")
    row_sums = generator.sum(axis=1)
    if not np.allclose(row_sums, 0.0, atol=1e-7 * max(1.0, np.abs(generator).max())):
        raise ValueError("generator rows must sum to 0")


def _clean_distribution(pi: np.ndarray) -> np.ndarray:
    pi = np.asarray(pi, dtype=float).copy()
    if pi.sum() < 0:
        pi = -pi
    pi[np.abs(pi) < 1e-14] = 0.0
    if np.any(pi < -1e-8):
        raise StationarySolveError("stationary solve produced significantly negative probabilities")
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise StationarySolveError("stationary solve produced a zero vector")
    return pi / total
