"""Numerical linear-algebra substrate for Markov-chain and QBD analysis.

This subpackage is independent of the SQ(d) model: it provides stationary
solvers for finite Markov chains, the Latouche–Ramaswami logarithmic
reduction algorithm for Quasi-Birth-Death (QBD) processes, and block-matrix
helpers used when assembling structured generators.
"""

from repro.linalg.solvers import (
    stationary_from_generator,
    stationary_from_transition_matrix,
    solve_left_nullspace,
    solve_constrained_left_nullspace,
)
from repro.linalg.logarithmic_reduction import (
    QBDSolveError,
    solve_G_logarithmic_reduction,
    solve_G_functional_iteration,
    rate_matrix_from_G,
    qbd_drift,
    is_qbd_positive_recurrent,
)
from repro.linalg.blocks import assemble_block_matrix, spectral_radius, geometric_block_sum

__all__ = [
    "stationary_from_generator",
    "stationary_from_transition_matrix",
    "solve_left_nullspace",
    "solve_constrained_left_nullspace",
    "QBDSolveError",
    "solve_G_logarithmic_reduction",
    "solve_G_functional_iteration",
    "rate_matrix_from_G",
    "qbd_drift",
    "is_qbd_positive_recurrent",
    "assemble_block_matrix",
    "spectral_radius",
    "geometric_block_sum",
]
