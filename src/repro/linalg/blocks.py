"""Block-matrix helpers for structured Markov generators."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def assemble_block_matrix(blocks: Sequence[Sequence[np.ndarray | None]]) -> np.ndarray:
    """Assemble a dense matrix from a 2-D grid of blocks.

    ``None`` entries denote all-zero blocks; their shapes are inferred from
    the other blocks in the same row and column.  Raises if shapes are
    inconsistent or cannot be inferred.
    """
    n_block_rows = len(blocks)
    if n_block_rows == 0:
        raise ValueError("blocks must be non-empty")
    n_block_cols = len(blocks[0])
    for row in blocks:
        if len(row) != n_block_cols:
            raise ValueError("all block rows must have the same number of block columns")

    row_heights = [None] * n_block_rows
    col_widths = [None] * n_block_cols
    for i, row in enumerate(blocks):
        for j, block in enumerate(row):
            if block is None:
                continue
            block = np.asarray(block)
            if row_heights[i] is None:
                row_heights[i] = block.shape[0]
            elif row_heights[i] != block.shape[0]:
                raise ValueError(f"inconsistent block heights in block row {i}")
            if col_widths[j] is None:
                col_widths[j] = block.shape[1]
            elif col_widths[j] != block.shape[1]:
                raise ValueError(f"inconsistent block widths in block column {j}")
    if any(h is None for h in row_heights) or any(w is None for w in col_widths):
        raise ValueError("cannot infer the shape of an all-None block row or column")

    total_rows = sum(row_heights)
    total_cols = sum(col_widths)
    result = np.zeros((total_rows, total_cols))
    row_offset = 0
    for i, row in enumerate(blocks):
        col_offset = 0
        for j, block in enumerate(row):
            if block is not None:
                result[row_offset:row_offset + row_heights[i], col_offset:col_offset + col_widths[j]] = block
            col_offset += col_widths[j]
        row_offset += row_heights[i]
    return result


def spectral_radius(matrix: np.ndarray) -> float:
    """Largest absolute eigenvalue of ``matrix``."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.size == 0:
        return 0.0
    return float(np.max(np.abs(np.linalg.eigvals(matrix))))


def geometric_block_sum(R: np.ndarray, terms: np.ndarray | None = None) -> np.ndarray:
    """Return ``(I - R)^{-1}`` or ``(I - R)^{-1} @ terms``.

    Requires the spectral radius of ``R`` to be strictly below one, which for
    a QBD is equivalent to positive recurrence.
    """
    R = np.asarray(R, dtype=float)
    radius = spectral_radius(R)
    if radius >= 1.0 - 1e-12:
        raise ValueError(f"geometric sum diverges: spectral radius of R is {radius:.6f} >= 1")
    inverse = np.linalg.inv(np.eye(R.shape[0]) - R)
    if terms is None:
        return inverse
    return inverse @ np.asarray(terms, dtype=float)
