"""Matrix-geometric machinery for Quasi-Birth-Death (QBD) processes.

A (continuous-time) QBD process has a block-tridiagonal generator whose
repeating blocks are ``A0`` (up one level), ``A1`` (within level) and ``A2``
(down one level).  Its stationary distribution has the matrix-geometric form
``pi_{q+1} = pi_q R``, where the rate matrix ``R`` is obtained from the
matrix ``G`` solving ``A2 + A1 G + A0 G^2 = 0``.

Two solvers for ``G`` are provided:

* :func:`solve_G_logarithmic_reduction` — the quadratically convergent
  algorithm of Latouche & Ramaswami (1993) used in the paper (Section IV.A),
* :func:`solve_G_functional_iteration` — the simple linearly convergent
  fixed-point iteration, kept as an independent cross-check.

Both operate directly on generator blocks (rates, not probabilities).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.solvers import stationary_from_generator


class QBDSolveError(RuntimeError):
    """Raised when the QBD fixed-point equations cannot be solved."""


@dataclass(frozen=True)
class GSolveResult:
    """Outcome of a G-matrix computation.

    Attributes
    ----------
    G:
        The first-passage probability matrix ``G``.
    iterations:
        Number of iterations the algorithm performed.
    residual:
        Frobenius norm of ``A2 + A1 G + A0 G^2``.
    """

    G: np.ndarray
    iterations: int
    residual: float


def _validate_blocks(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    A0 = np.asarray(A0, dtype=float)
    A1 = np.asarray(A1, dtype=float)
    A2 = np.asarray(A2, dtype=float)
    m = A1.shape[0]
    for name, block in (("A0", A0), ("A1", A1), ("A2", A2)):
        if block.shape != (m, m):
            raise ValueError(f"{name} must be a square block of size {m}x{m}, got {block.shape}")
    if np.any(A0 < -1e-12) or np.any(A2 < -1e-12):
        raise ValueError("A0 and A2 must be non-negative rate blocks")
    off_diag = A1 - np.diag(np.diag(A1))
    if np.any(off_diag < -1e-12):
        raise ValueError("off-diagonal entries of A1 must be non-negative")
    row_sums = (A0 + A1 + A2).sum(axis=1)
    if np.any(row_sums > 1e-7 * max(1.0, np.abs(A1).max())):
        raise ValueError("A0 + A1 + A2 must have non-positive row sums for a QBD generator")
    return A0, A1, A2


def qbd_residual(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, G: np.ndarray) -> float:
    """Frobenius norm of the defining equation ``A2 + A1 G + A0 G^2``."""
    return float(np.linalg.norm(A2 + A1 @ G + A0 @ G @ G))


def qbd_drift(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray) -> float:
    """Mean drift ``pi A0 e - pi A2 e`` of the level process.

    ``pi`` is the stationary distribution of the aggregated phase generator
    ``A = A0 + A1 + A2``.  A negative drift (downward) is equivalent to
    positive recurrence of the QBD (Neuts' condition ``pi A0 e < pi A2 e``).
    """
    A0, A1, A2 = _validate_blocks(A0, A1, A2)
    aggregate = A0 + A1 + A2
    # The aggregate matrix may have slightly negative row sums because the
    # caller's level-independent part can lose probability at redirections;
    # repair it into a proper generator for the drift computation.
    aggregate = aggregate - np.diag(aggregate.sum(axis=1))
    pi = stationary_from_generator(aggregate)
    ones = np.ones(A0.shape[0])
    return float(pi @ A0 @ ones - pi @ A2 @ ones)


def is_qbd_positive_recurrent(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, tolerance: float = 0.0) -> bool:
    """Neuts' stability condition: the level process drifts downward."""
    return qbd_drift(A0, A1, A2) < -abs(tolerance)


def solve_G_functional_iteration(
    A0: np.ndarray,
    A1: np.ndarray,
    A2: np.ndarray,
    tolerance: float = 1e-12,
    max_iterations: int = 100_000,
) -> GSolveResult:
    """Solve for ``G`` with the natural fixed-point iteration.

    Iterates ``G <- (-A1)^{-1} (A2 + A0 G^2)`` starting from ``G = 0``.  The
    iteration converges monotonically for positive recurrent QBDs, but only
    linearly; it exists mainly as an independent check of the logarithmic
    reduction solver.
    """
    A0, A1, A2 = _validate_blocks(A0, A1, A2)
    neg_A1_inv = np.linalg.inv(-A1)
    G = np.zeros_like(A1)
    for iteration in range(1, max_iterations + 1):
        G_next = neg_A1_inv @ (A2 + A0 @ G @ G)
        delta = np.max(np.abs(G_next - G))
        G = G_next
        if delta < tolerance:
            return GSolveResult(G=G, iterations=iteration, residual=qbd_residual(A0, A1, A2, G))
    raise QBDSolveError(f"functional iteration did not converge within {max_iterations} iterations")


def solve_G_logarithmic_reduction(
    A0: np.ndarray,
    A1: np.ndarray,
    A2: np.ndarray,
    tolerance: float = 1e-13,
    max_iterations: int = 64,
) -> GSolveResult:
    """Latouche–Ramaswami logarithmic reduction for the matrix ``G``.

    Follows the formulation used in the paper (Section IV.A):

    .. math::

        B_{1,1} = (-A_1)^{-1} A_0, \\qquad B_{2,1} = (-A_1)^{-1} A_2,

        B_{1,i} = (I - B_{1,i-1} B_{2,i-1} - B_{2,i-1} B_{1,i-1})^{-1} B_{1,i-1}^2,

        B_{2,i} = (I - B_{1,i-1} B_{2,i-1} - B_{2,i-1} B_{1,i-1})^{-1} B_{2,i-1}^2,

    and ``G = sum_k (prod_{i<=k} B_{1,i}) ... `` accumulated as in
    Latouche & Ramaswami (1993).  In practice only a handful of iterations are
    needed (the paper reports ``k <= 6`` for its configurations) because the
    error decays doubly exponentially.
    """
    A0, A1, A2 = _validate_blocks(A0, A1, A2)
    m = A1.shape[0]
    identity = np.eye(m)

    neg_A1_inv = np.linalg.inv(-A1)
    # U ("up") and L ("down") one-step probability-like blocks.
    B1 = neg_A1_inv @ A0
    B2 = neg_A1_inv @ A2

    # G accumulates  L + U L^(2) + U U^(2) L^(4) + ...  where the superscripts
    # denote the doubled-step matrices produced by the reduction.
    G = B2.copy()
    prefix_product = B1.copy()

    for iteration in range(1, max_iterations + 1):
        mix = B1 @ B2 + B2 @ B1
        try:
            center_inverse = np.linalg.inv(identity - mix)
        except np.linalg.LinAlgError as exc:
            raise QBDSolveError("logarithmic reduction hit a singular intermediate matrix") from exc
        B1_next = center_inverse @ (B1 @ B1)
        B2_next = center_inverse @ (B2 @ B2)

        increment = prefix_product @ B2_next
        G_next = G + increment
        prefix_product = prefix_product @ B1_next
        B1, B2 = B1_next, B2_next

        change = np.max(np.abs(increment)) if increment.size else 0.0
        G = G_next
        if change < tolerance or np.max(np.abs(prefix_product)) < tolerance:
            residual = qbd_residual(A0, A1, A2, G)
            if residual > 1e-6 * max(1.0, np.abs(A1).max()):
                raise QBDSolveError(f"logarithmic reduction converged to a poor solution (residual {residual:.3e})")
            return GSolveResult(G=G, iterations=iteration, residual=residual)

    raise QBDSolveError(f"logarithmic reduction did not converge within {max_iterations} iterations")


def rate_matrix_from_G(A0: np.ndarray, A1: np.ndarray, G: np.ndarray) -> np.ndarray:
    """Compute the rate matrix ``R = -A0 (A1 + A0 G)^{-1}`` (Latouche & Ramaswami)."""
    A0 = np.asarray(A0, dtype=float)
    A1 = np.asarray(A1, dtype=float)
    G = np.asarray(G, dtype=float)
    try:
        inverse = np.linalg.inv(A1 + A0 @ G)
    except np.linalg.LinAlgError as exc:
        raise QBDSolveError("A1 + A0 G is singular; cannot form the rate matrix R") from exc
    R = -A0 @ inverse
    if np.any(R < -1e-9):
        raise QBDSolveError("rate matrix R has significantly negative entries")
    return np.clip(R, 0.0, None)


def rate_matrix_residual(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, R: np.ndarray) -> float:
    """Frobenius norm of ``A0 + R A1 + R^2 A2`` (should vanish for the true R)."""
    return float(np.linalg.norm(A0 + R @ A1 + R @ R @ A2))
