#!/usr/bin/env python3
"""Documentation checker: shell blocks must parse, internal links must resolve.

Used by the CI docs job and by ``tests/test_docs.py``:

* every fenced ```` ```bash ```` block is piped through ``bash -n`` (parse
  only, nothing is executed), so documented commands cannot rot into
  syntax errors;
* every relative markdown link ``[text](target)`` must point at an existing
  file (anchors and ``http(s)``/``mailto`` targets are skipped), so the
  docs tree cannot silently break when files move.

Usage::

    python tools/check_docs.py README.md docs/*.md

Exits non-zero with one line per failure.
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
from pathlib import Path
from typing import List, Tuple

FENCE_RE = re.compile(r"^```(\w*)\s*$")
# Inline links only; reference-style links and images are out of scope.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def extract_bash_blocks(text: str) -> List[Tuple[int, str]]:
    """Return ``(starting_line, block_text)`` for every ```bash fence."""
    blocks: List[Tuple[int, str]] = []
    language = None
    start = 0
    lines: List[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        fence = FENCE_RE.match(line.strip())
        if fence is None:
            if language is not None:
                lines.append(line)
            continue
        if language is None:
            language = fence.group(1).lower()
            start = number
            lines = []
        else:
            if language in ("bash", "sh", "shell"):
                blocks.append((start, "\n".join(lines)))
            language = None
    return blocks


def check_bash_blocks(path: Path, bash: str) -> List[str]:
    """Run ``bash -n`` over every shell block; return failure messages."""
    failures = []
    for line_number, block in extract_bash_blocks(path.read_text(encoding="utf-8")):
        completed = subprocess.run(
            [bash, "-n"], input=block, capture_output=True, text=True, timeout=30
        )
        if completed.returncode != 0:
            detail = completed.stderr.strip().splitlines()
            failures.append(
                f"{path}:{line_number}: bash block does not parse: "
                f"{detail[0] if detail else 'unknown error'}"
            )
    return failures


def check_links(path: Path) -> List[str]:
    """Every relative link target must exist on disk.

    Fenced code blocks are skipped: link-shaped text inside an example is
    code, not a link.
    """
    failures = []
    in_fence = False
    for number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (path.parent / relative).exists():
                failures.append(f"{path}:{number}: broken link target {target!r}")
    return failures


def check_files(paths: List[Path]) -> List[str]:
    """Check every file; returns the combined failure list."""
    bash = shutil.which("bash")
    failures: List[str] = []
    for path in paths:
        if not path.exists():
            failures.append(f"{path}: file not found")
            continue
        if bash is not None:
            failures.extend(check_bash_blocks(path, bash))
        failures.extend(check_links(path))
    if bash is None:
        print("warning: bash not found on PATH, shell blocks not checked", file=sys.stderr)
    return failures


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_docs.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    failures = check_files([Path(argument) for argument in argv])
    for failure in failures:
        print(failure, file=sys.stderr)
    if failures:
        print(f"{len(failures)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"checked {len(argv)} file(s): all shell blocks parse, all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
